"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("plan", "predict", "simulate", "compare", "calibrate"):
            args = None
            try:
                if command == "plan":
                    args = parser.parse_args(
                        ["plan", "--nodes", "4", "--dgemm", "100"]
                    )
                elif command in ("predict", "simulate"):
                    args = parser.parse_args([command, "x.xml"])
                elif command == "compare":
                    args = parser.parse_args(
                        ["compare", "--nodes", "4", "--dgemm", "100"]
                    )
                else:
                    args = parser.parse_args(["calibrate"])
            except SystemExit:  # pragma: no cover
                pytest.fail(f"subcommand {command} failed to parse")
            assert args.command == command

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestPlanCommand:
    def test_plan_homogeneous(self, capsys, tmp_path):
        out = tmp_path / "plan.xml"
        code = main(
            ["plan", "--nodes", "6", "--dgemm", "200", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "DeploymentPlan" in text

    def test_plan_random_heterogenized(self, capsys):
        code = main(
            [
                "plan", "--random", "12", "--seed", "3",
                "--heterogenize", "0.5", "--dgemm", "310", "--show-tree",
            ]
        )
        assert code == 0
        assert "agent" in capsys.readouterr().out

    def test_plan_with_demand(self, capsys):
        code = main(
            ["plan", "--nodes", "20", "--dgemm", "200", "--demand", "30"]
        )
        assert code == 0

    def test_plan_explicit_powers(self, capsys):
        code = main(["plan", "--powers", "300,200,100", "--app-work", "10"])
        assert code == 0

    def test_missing_pool_is_error(self, capsys):
        code = main(["plan", "--dgemm", "100"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_workload_is_error(self, capsys):
        code = main(["plan", "--nodes", "4"])
        assert code == 2


class TestPredictSimulate:
    def test_predict_and_simulate_round_trip(self, capsys, tmp_path):
        out = tmp_path / "plan.xml"
        assert main(
            ["plan", "--nodes", "4", "--dgemm", "200", "--output", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["predict", str(out)]) == 0
        predict_out = capsys.readouterr().out
        assert "rho" in predict_out
        assert main(
            [
                "simulate", str(out),
                "--client-interval", "0.2", "--max-clients", "40",
                "--hold", "4",
            ]
        ) == 0
        sim_out = capsys.readouterr().out
        assert "measured max sustained throughput" in sim_out


class TestCalibrateCommand:
    def test_calibrate_prints_table3(self, capsys):
        assert main(["calibrate", "--repetitions", "10"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Agent (calibrated)" in out


class TestCompareCommand:
    def test_compare_small_pool(self, capsys):
        code = main(
            [
                "compare", "--nodes", "12", "--dgemm", "200",
                "--clients", "30", "--duration", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "automatic" in out
        assert "star" in out
