"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("plan", "predict", "simulate", "compare", "calibrate"):
            args = None
            try:
                if command == "plan":
                    args = parser.parse_args(
                        ["plan", "--nodes", "4", "--dgemm", "100"]
                    )
                elif command in ("predict", "simulate"):
                    args = parser.parse_args([command, "x.xml"])
                elif command == "compare":
                    args = parser.parse_args(
                        ["compare", "--nodes", "4", "--dgemm", "100"]
                    )
                else:
                    args = parser.parse_args(["calibrate"])
            except SystemExit:  # pragma: no cover
                pytest.fail(f"subcommand {command} failed to parse")
            assert args.command == command

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestPlanCommand:
    def test_plan_homogeneous(self, capsys, tmp_path):
        out = tmp_path / "plan.xml"
        code = main(
            ["plan", "--nodes", "6", "--dgemm", "200", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "DeploymentPlan" in text

    def test_plan_random_heterogenized(self, capsys):
        code = main(
            [
                "plan", "--random", "12", "--seed", "3",
                "--heterogenize", "0.5", "--dgemm", "310", "--show-tree",
            ]
        )
        assert code == 0
        assert "agent" in capsys.readouterr().out

    def test_plan_with_demand(self, capsys):
        code = main(
            ["plan", "--nodes", "20", "--dgemm", "200", "--demand", "30"]
        )
        assert code == 0

    def test_plan_explicit_powers(self, capsys):
        code = main(["plan", "--powers", "300,200,100", "--app-work", "10"])
        assert code == 0

    def test_missing_pool_is_error(self, capsys):
        code = main(["plan", "--dgemm", "100"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_workload_is_error(self, capsys):
        code = main(["plan", "--nodes", "4"])
        assert code == 2


class TestPredictSimulate:
    def test_predict_and_simulate_round_trip(self, capsys, tmp_path):
        out = tmp_path / "plan.xml"
        assert main(
            ["plan", "--nodes", "4", "--dgemm", "200", "--output", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["predict", str(out)]) == 0
        predict_out = capsys.readouterr().out
        assert "rho" in predict_out
        assert main(
            [
                "simulate", str(out),
                "--client-interval", "0.2", "--max-clients", "40",
                "--hold", "4",
            ]
        ) == 0
        sim_out = capsys.readouterr().out
        assert "measured max sustained throughput" in sim_out


class TestCalibrateCommand:
    def test_calibrate_prints_table3(self, capsys):
        assert main(["calibrate", "--repetitions", "10"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Agent (calibrated)" in out


class TestCompareCommand:
    def test_compare_small_pool(self, capsys):
        code = main(
            [
                "compare", "--nodes", "12", "--dgemm", "200",
                "--clients", "30", "--duration", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "heuristic" in out
        assert "star" in out

    def test_compare_explicit_methods(self, capsys):
        code = main(
            [
                "compare", "--nodes", "8", "--dgemm", "200",
                "--methods", "heuristic,chain",
                "--clients", "10", "--duration", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chain" in out
        assert "balanced" not in out


class TestImproveCommand:
    def test_improve_round_trip(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.xml"
        improved_path = tmp_path / "improved.xml"
        assert main(
            ["plan", "--nodes", "8", "--dgemm", "200",
             "--output", str(plan_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "improve", str(plan_path), "--random", "4", "--seed", "2",
                "--output", str(improved_path), "--show-tree",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Improvement plan" in out
        assert "spare-" in out  # spares get a non-colliding prefix
        assert improved_path.exists()
        # The improved plan is itself a loadable plan.
        capsys.readouterr()
        assert main(["predict", str(improved_path)]) == 0
        assert "+improve" in capsys.readouterr().out

    def test_improve_without_spares_still_reports(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.xml"
        assert main(
            ["plan", "--nodes", "4", "--dgemm", "200",
             "--output", str(plan_path)]
        ) == 0
        capsys.readouterr()
        assert main(["improve", str(plan_path)]) == 0
        assert "throughput" in capsys.readouterr().out


class TestControlCommand:
    def test_control_runs_and_prints_timeline(self, capsys):
        code = main(
            [
                "control", "--random", "8", "--seed", "2", "--dgemm", "200",
                "--trace", "burst:base=2,burst_level=12,at=4,duration=6",
                "--epochs", "5", "--epoch-duration", "2",
                "--policy", "reactive", "--policy-opt", "hysteresis=1",
                "--policy-opt", "cooldown=1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Control timeline" in out
        assert "policy=reactive" in out
        assert "epoch" in out

    def test_control_bad_trace_spec_is_error(self, capsys):
        code = main(
            [
                "control", "--nodes", "6", "--dgemm", "200",
                "--trace", "tsunami:level=3", "--epochs", "2",
            ]
        )
        assert code == 2
        assert "unknown trace type" in capsys.readouterr().err

    def test_control_bad_policy_opt_is_error(self, capsys):
        code = main(
            [
                "control", "--nodes", "6", "--dgemm", "200",
                "--trace", "constant:level=3", "--epochs", "2",
                "--policy-opt", "vibes=1",
            ]
        )
        assert code == 2
        assert "valid options" in capsys.readouterr().err

    def test_policy_choices_come_from_registry(self):
        from repro.control.policy import available_policies

        parser = build_parser()
        for policy in available_policies():
            args = parser.parse_args(
                [
                    "control", "--nodes", "4", "--dgemm", "100",
                    "--trace", "constant:level=2", "--policy", policy,
                ]
            )
            assert args.policy == policy

    def test_control_migration_modes_and_fixture_traces(self, capsys):
        for mode in ("live", "restart"):
            code = main(
                [
                    "control", "--random", "8", "--seed", "2",
                    "--dgemm", "200", "--trace", "wikipedia_flash",
                    "--epochs", "4", "--epoch-duration", "2",
                    "--migration", mode,
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert f"migration={mode}" in out
            assert "fixture:wikipedia_flash" in out

    def test_control_faults_spec_marks_timeline(self, capsys):
        code = main(
            [
                "control", "--random", "8", "--seed", "2", "--dgemm", "200",
                "--trace", "constant:level=6", "--epochs", "5",
                "--epoch-duration", "2", "--policy", "reactive",
                "--policy-opt", "hysteresis=1", "--policy-opt", "cooldown=1",
                "--faults", "crash:target=busiest-server,at=3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "!crash(" in out
        assert "faults injected" in out

    def test_control_bad_fault_spec_is_error(self, capsys):
        code = main(
            [
                "control", "--nodes", "6", "--dgemm", "200",
                "--trace", "constant:level=3", "--epochs", "2",
                "--faults", "meteor:target=s0,at=1",
            ]
        )
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_control_sweep_prints_one_row_per_cell(self, capsys):
        code = main(
            [
                "control", "--random", "8", "--seed", "2",
                "--dgemm", "200",
                "--trace", "constant:level=3",
                "--trace", "burst:base=2,burst_level=10,at=2,duration=4",
                "--sweep", "--policies", "hold,reactive",
                "--seeds", "0,1", "--workers", "1",
                "--epochs", "3", "--epoch-duration", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Control sweep (8 cells" in out
        assert out.count("constant:level=3") == 4
        assert out.count("reactive") >= 4

    def test_control_sweep_policy_opts_reach_accepting_policies_only(
        self, capsys
    ):
        # hysteresis tunes reactive; hold takes no options and must not
        # choke on it — but an option nobody accepts is an error.
        code = main(
            [
                "control", "--random", "8", "--seed", "2",
                "--dgemm", "200", "--trace", "constant:level=3",
                "--sweep", "--policies", "hold,reactive",
                "--policy-opt", "hysteresis=1", "--workers", "1",
                "--epochs", "2", "--epoch-duration", "2",
            ]
        )
        assert code == 0
        assert "Control sweep" in capsys.readouterr().out
        code = main(
            [
                "control", "--random", "8", "--seed", "2",
                "--dgemm", "200", "--trace", "constant:level=3",
                "--sweep", "--policies", "hold,reactive",
                "--policy-opt", "vibes=1", "--workers", "1",
                "--epochs", "2", "--epoch-duration", "2",
            ]
        )
        assert code == 2
        assert "not accepted by any swept policy" in capsys.readouterr().err

    def test_control_sweep_bad_trace_spec_is_error(self, capsys):
        code = main(
            [
                "control", "--random", "8", "--seed", "2",
                "--dgemm", "200",
                "--trace", "constant:level=3",
                "--trace", "tsunami:level=9",
                "--sweep", "--workers", "1",
                "--epochs", "2", "--epoch-duration", "2",
            ]
        )
        assert code == 2
        assert "unknown trace type" in capsys.readouterr().err

    def test_control_sweep_unknown_policy_is_error(self, capsys):
        code = main(
            [
                "control", "--random", "8", "--seed", "2",
                "--dgemm", "200", "--trace", "constant:level=3",
                "--sweep", "--policies", "hold,vibes-based",
                "--workers", "1",
                "--epochs", "2", "--epoch-duration", "2",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown control policy" in err
        assert "vibes-based" in err

    def test_control_sweep_zero_workers_is_error(self, capsys):
        code = main(
            [
                "control", "--random", "8", "--seed", "2",
                "--dgemm", "200", "--trace", "constant:level=3",
                "--sweep", "--workers", "0",
                "--epochs", "2", "--epoch-duration", "2",
            ]
        )
        assert code == 2
        assert "max_workers >= 1" in capsys.readouterr().err

    def test_control_concurrent_migration_mode(self, capsys):
        code = main(
            [
                "control", "--random", "8", "--seed", "2",
                "--dgemm", "200", "--trace", "wikipedia_flash",
                "--epochs", "4", "--epoch-duration", "2",
                "--migration", "concurrent",
                "--policy-opt", "hysteresis=1", "--policy-opt", "cooldown=1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "migration=concurrent" in out
        # The timeline's migration-window column (a real table column,
        # not the "window" substring describe() always prints).
        assert "| win " in out

    def test_control_multiple_traces_without_sweep_is_error(self, capsys):
        code = main(
            [
                "control", "--nodes", "6", "--dgemm", "200",
                "--trace", "constant:level=3",
                "--trace", "constant:level=5",
                "--epochs", "2",
            ]
        )
        assert code == 2
        assert "--sweep" in capsys.readouterr().err


class TestPoolValidation:
    def test_zero_nodes_reports_positive_pool_error(self, capsys):
        code = main(["plan", "--nodes", "0", "--dgemm", "100"])
        assert code == 2
        assert "pool size must be positive" in capsys.readouterr().err

    def test_zero_random_reports_positive_pool_error(self, capsys):
        code = main(["plan", "--random", "0", "--dgemm", "100"])
        assert code == 2
        assert "pool size must be positive" in capsys.readouterr().err

    def test_empty_powers_is_error(self, capsys):
        code = main(["plan", "--powers", ",", "--dgemm", "100"])
        assert code == 2
        assert "at least one node power" in capsys.readouterr().err


class TestRegistryDrivenCli:
    def test_method_choices_come_from_registry(self):
        from repro.core.registry import REGISTRY

        parser = build_parser()
        for method in REGISTRY.available():
            args = parser.parse_args(
                ["plan", "--nodes", "4", "--dgemm", "100", "--method", method]
            )
            assert args.method == method
        # extension planners appear without any CLI edit
        assert {"hetcomm", "multiapp", "redeploy"} <= set(REGISTRY.available())

    def test_planners_subcommand_lists_registry(self, capsys):
        assert main(["planners"]) == 0
        out = capsys.readouterr().out
        for name in ("heuristic", "hetcomm", "multiapp", "redeploy"):
            assert name in out
        assert "HeuristicOptions" in out

    def test_plan_with_typed_opt_flags(self, capsys):
        code = main(
            [
                "plan", "--nodes", "12", "--dgemm", "200",
                "--method", "balanced", "--opt", "middle_agents=2",
            ]
        )
        assert code == 0
        assert "balanced" in capsys.readouterr().out

    def test_bad_opt_value_is_actionable(self, capsys):
        code = main(
            [
                "plan", "--nodes", "12", "--dgemm", "200",
                "--opt", "patience=soon",
            ]
        )
        assert code == 2
        assert "patience" in capsys.readouterr().err

    def test_unknown_opt_lists_valid_ones(self, capsys):
        code = main(
            ["plan", "--nodes", "12", "--dgemm", "200", "--opt", "wibble=1"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "wibble" in err
        assert "strategy" in err  # valid options are listed

    def test_extension_method_plans_end_to_end(self, capsys):
        code = main(
            [
                "plan", "--random", "8", "--seed", "3", "--dgemm", "150",
                "--method", "redeploy", "--opt", "initial_fraction=0.6",
            ]
        )
        assert code == 0
        assert "redeploy" in capsys.readouterr().out
