"""Communication time models (Eqs. 1-4)."""

import pytest

from repro.core import comm_model
from repro.core.params import LevelSizes, ModelParams
from repro.errors import ParameterError


@pytest.fixture
def p() -> ModelParams:
    # Round numbers so the expected values are obvious.
    return ModelParams(
        agent_sizes=LevelSizes(sreq=10.0, srep=20.0),
        server_sizes=LevelSizes(sreq=1.0, srep=2.0),
        bandwidth=100.0,
    )


class TestAgentReceive:
    def test_eq1_structure(self, p):
        # (Sreq + d*Srep) / B with agent-level children.
        assert comm_model.agent_receive_time(p, 3) == pytest.approx(
            (10.0 + 3 * 20.0) / 100.0
        )

    def test_zero_children_is_parent_message_only(self, p):
        assert comm_model.agent_receive_time(p, 0) == pytest.approx(0.1)

    def test_server_children_sizes(self, p):
        t = comm_model.agent_receive_time(p, 4, child_sizes=p.server_sizes)
        assert t == pytest.approx((10.0 + 4 * 2.0) / 100.0)

    def test_rejects_negative_degree(self, p):
        with pytest.raises(ParameterError):
            comm_model.agent_receive_time(p, -1)


class TestAgentSend:
    def test_eq2_structure(self, p):
        # (d*Sreq + Srep) / B.
        assert comm_model.agent_send_time(p, 3) == pytest.approx(
            (3 * 10.0 + 20.0) / 100.0
        )

    def test_server_children_sizes(self, p):
        t = comm_model.agent_send_time(p, 5, child_sizes=p.server_sizes)
        assert t == pytest.approx((5 * 1.0 + 20.0) / 100.0)


class TestServerTimes:
    def test_eq3_receive(self, p):
        assert comm_model.server_receive_time(p) == pytest.approx(0.01)

    def test_eq4_send(self, p):
        assert comm_model.server_send_time(p) == pytest.approx(0.02)

    def test_total(self, p):
        assert comm_model.server_comm_time(p) == pytest.approx(0.03)


class TestAgentTotal:
    def test_is_sum_of_directions(self, p):
        for degree in (1, 2, 7):
            assert comm_model.agent_comm_time(p, degree) == pytest.approx(
                comm_model.agent_receive_time(p, degree)
                + comm_model.agent_send_time(p, degree)
            )

    def test_monotone_in_degree(self, p):
        times = [comm_model.agent_comm_time(p, d) for d in range(1, 10)]
        assert times == sorted(times)

    def test_scales_inverse_with_bandwidth(self, p):
        fast = p.with_bandwidth(200.0)
        assert comm_model.agent_comm_time(fast, 3) == pytest.approx(
            comm_model.agent_comm_time(p, 3) / 2.0
        )
