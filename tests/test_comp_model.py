"""Computation time models (Eqs. 5-10)."""

import pytest

from repro.core import comp_model
from repro.core.params import ModelParams
from repro.errors import ParameterError


@pytest.fixture
def p() -> ModelParams:
    return ModelParams(wreq=1.0, wfix=0.5, wsel=0.25, wpre=2.0)


class TestAgentCompTime:
    def test_eq5_structure(self, p):
        # (Wreq + Wfix + Wsel*d) / w
        assert comp_model.agent_comp_time(p, power=10.0, degree=2) == (
            pytest.approx((1.0 + 0.5 + 0.5) / 10.0)
        )

    def test_linear_in_degree(self, p):
        t1 = comp_model.agent_comp_time(p, 10.0, 1)
        t2 = comp_model.agent_comp_time(p, 10.0, 2)
        t3 = comp_model.agent_comp_time(p, 10.0, 3)
        assert t2 - t1 == pytest.approx(t3 - t2)

    def test_inverse_in_power(self, p):
        assert comp_model.agent_comp_time(p, 20.0, 4) == pytest.approx(
            comp_model.agent_comp_time(p, 10.0, 4) / 2.0
        )

    def test_rejects_bad_inputs(self, p):
        with pytest.raises(ParameterError):
            comp_model.agent_comp_time(p, 0.0, 1)
        with pytest.raises(ParameterError):
            comp_model.agent_comp_time(p, 10.0, -1)


class TestServerCompTime:
    def test_single_server_closed_form(self, p):
        # (1 + Wpre/Wapp) / (w/Wapp) == (Wapp + Wpre) / w
        t = comp_model.server_comp_time(p, [10.0], [8.0])
        assert t == pytest.approx((8.0 + 2.0) / 10.0)

    def test_two_equal_servers_halve_time(self, p):
        one = comp_model.server_comp_time(p, [10.0], [8.0])
        two = comp_model.server_comp_time(p, [10.0, 10.0], [8.0, 8.0])
        # Prediction is duplicated on both servers, so speedup is slightly
        # below 2 but the service term halves.
        assert two < one
        assert two == pytest.approx((1 + 2 * 2.0 / 8.0) / (2 * 10.0 / 8.0))

    def test_adding_any_server_helps_until_prediction_dominates(self, p):
        # With Wpre << Wapp, adding even a slow server reduces the time.
        p2 = p.replace(wpre=1e-6)
        base = comp_model.server_comp_time(p2, [10.0], [8.0])
        more = comp_model.server_comp_time(p2, [10.0, 0.1], [8.0, 8.0])
        assert more < base

    def test_heterogeneous_app_works(self, p):
        t = comp_model.server_comp_time(p, [10.0, 5.0], [8.0, 4.0])
        expected = (1 + 2.0 / 8.0 + 2.0 / 4.0) / (10.0 / 8.0 + 5.0 / 4.0)
        assert t == pytest.approx(expected)

    def test_validation(self, p):
        with pytest.raises(ParameterError):
            comp_model.server_comp_time(p, [], [])
        with pytest.raises(ParameterError):
            comp_model.server_comp_time(p, [1.0], [1.0, 2.0])
        with pytest.raises(ParameterError):
            comp_model.server_comp_time(p, [-1.0], [1.0])
        with pytest.raises(ParameterError):
            comp_model.server_comp_time(p, [1.0], [0.0])


class TestServerShare:
    def test_shares_sum_to_one(self, p):
        shares = comp_model.server_share(p, [10.0, 20.0, 30.0], [8.0] * 3)
        assert sum(shares) == pytest.approx(1.0)

    def test_equal_servers_equal_shares(self, p):
        shares = comp_model.server_share(p, [10.0, 10.0], [8.0, 8.0])
        assert shares[0] == pytest.approx(shares[1])

    def test_faster_server_gets_more(self, p):
        shares = comp_model.server_share(p, [10.0, 30.0], [8.0, 8.0])
        assert shares[1] > shares[0]

    def test_share_ratio_tracks_power_when_prediction_negligible(self, p):
        p2 = p.replace(wpre=1e-9)
        shares = comp_model.server_share(p2, [10.0, 30.0], [8.0, 8.0])
        assert shares[1] / shares[0] == pytest.approx(3.0, rel=1e-6)

    def test_too_slow_server_clipped_to_zero(self, p):
        # A server far slower than the pool cannot even finish its
        # prediction work in the steady-state window.
        p2 = p.replace(wpre=5.0)
        shares = comp_model.server_share(p2, [100.0, 0.5], [8.0, 8.0])
        assert shares[1] == 0.0
        assert shares[0] == pytest.approx(1.0)
