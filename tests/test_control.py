"""Online control plane: traces, monitor, policies, control loop."""

import pytest

from repro.api import PlanningSession
from repro.control import (
    ControlLoop,
    MigrationCostModel,
    available_policies,
    burst,
    constant,
    diurnal,
    flash_crowd,
    from_spec,
    make_policy,
    piecewise,
    ramp,
    replay,
)
from repro.control.policy import ControlDecision, ReactivePolicy
from repro.core.params import DEFAULT_PARAMS, ModelParams
from repro.core.baselines import star_deployment
from repro.errors import ControlError
from repro.platforms.pool import NodePool
from repro.sim.trace import TraceRecorder
from repro.units import dgemm_mflop


WORK = dgemm_mflop(200)


def small_loop(**overrides):
    """A fast-running controller over a 10-node pool."""
    defaults = dict(
        pool=NodePool.uniform_random(10, low=80, high=400, seed=7),
        app_work=WORK,
        trace=flash_crowd(base=3, peak=20, at=8, rise=2, fall=6),
        policy="reactive",
        policy_options={"hysteresis": 1, "cooldown": 1},
        epochs=10,
        epoch_duration=2.0,
        initial_fraction=0.4,
        seed=5,
    )
    defaults.update(overrides)
    return ControlLoop(**defaults)


class TestTraces:
    def test_constant(self):
        trace = constant(7)
        assert [trace.level(t) for t in (0.0, 5.0, 1e6)] == [7, 7, 7]

    def test_piecewise_steps(self):
        trace = piecewise([(0.0, 2), (10.0, 8), (20.0, 1)])
        assert trace.level(0.0) == 2
        assert trace.level(9.99) == 2
        assert trace.level(10.0) == 8
        assert trace.level(25.0) == 1

    def test_piecewise_before_first_step(self):
        trace = piecewise([(5.0, 4)])
        assert trace.level(0.0) == 4

    def test_ramp_interpolates(self):
        trace = ramp(0, 10, 0.0, 10.0)
        assert trace.level(0.0) == 0
        assert trace.level(5.0) == 5
        assert trace.level(10.0) == 10
        assert trace.level(100.0) == 10

    def test_diurnal_cycle(self):
        trace = diurnal(base=2, peak=10, period=40)
        assert trace.level(0.0) == 2  # trough at phase 0
        assert trace.level(20.0) == 10  # crest half a period later
        assert trace.level(40.0) == 2

    def test_burst_window(self):
        trace = burst(base=1, burst_level=9, at=10.0, duration=5.0)
        assert trace.level(9.9) == 1
        assert trace.level(10.0) == 9
        assert trace.level(14.9) == 9
        assert trace.level(15.0) == 1

    def test_flash_crowd_shape(self):
        trace = flash_crowd(base=4, peak=40, at=10, rise=5, fall=10)
        assert trace.level(0.0) == 4
        assert trace.level(15.0) == 40  # end of the rise
        # Decay: strictly between base and peak, decreasing.
        later = [trace.level(t) for t in (20.0, 30.0, 60.0)]
        assert later == sorted(later, reverse=True)
        assert all(4 <= level < 40 for level in later)

    def test_levels_never_negative(self):
        trace = ramp(5, 0, 0.0, 5.0).scale(0.5)
        assert all(level >= 0 for level in trace.sample(0.0, 10.0, 1.0))

    def test_add_and_scale_and_clamp(self):
        combined = (constant(3) + constant(4)).scale(2.0).clamp(0, 10)
        assert combined.level(1.0) == 10

    def test_delayed(self):
        trace = burst(base=0, burst_level=5, at=0.0, duration=2.0).delayed(10.0)
        assert trace.level(5.0) == 0
        assert trace.level(11.0) == 5

    def test_jittered_is_pure_and_seeded(self):
        base = constant(20)
        jittered = base.jittered(5, seed=3)
        levels_a = jittered.sample(0.0, 30.0, 1.0)
        levels_b = jittered.sample(0.0, 30.0, 1.0)
        assert levels_a == levels_b  # pure function of time
        assert base.jittered(5, seed=4).sample(0.0, 30.0, 1.0) != levels_a
        assert any(level != 20 for level in levels_a)
        assert all(15 <= level <= 25 for level in levels_a)

    def test_jitter_requires_explicit_seed(self):
        with pytest.raises(TypeError):
            constant(5).jittered(2)  # no implicit randomness

    def test_replay_holds_buckets_and_persists(self):
        class FakeRamp:
            clients = [1, 3, 5]

        trace = replay(FakeRamp(), window=2.0)
        assert trace.level(0.0) == 1
        assert trace.level(2.0) == 3
        assert trace.level(4.5) == 5
        assert trace.level(100.0) == 5  # last level persists

    def test_sample_and_peak(self):
        trace = piecewise([(0.0, 1), (2.0, 9)])
        assert trace.sample(0.0, 4.0, 1.0) == [1, 1, 9, 9]
        assert trace.peak(0.0, 4.0) == 9

    def test_empty_window_has_no_samples(self):
        trace = constant(5)
        assert trace.sample(5.0, 5.0, 1.0) == []
        with pytest.raises(ControlError, match="empty window"):
            trace.peak(5.0, 5.0)

    def test_validation_errors(self):
        with pytest.raises(ControlError):
            constant(-1)
        with pytest.raises(ControlError):
            piecewise([])
        with pytest.raises(ControlError):
            piecewise([(5.0, 1), (5.0, 2)])  # not strictly increasing
        with pytest.raises(ControlError):
            ramp(0, 5, 10.0, 10.0)
        with pytest.raises(ControlError):
            diurnal(5, 3, 10.0)  # base > peak
        with pytest.raises(ControlError):
            flash_crowd(2, 10, at=0.0, rise=0.0)
        with pytest.raises(ControlError):
            constant(5).sample(0.0, 10.0, 0.0)


class TestTraceSpec:
    def test_round_trips_every_type(self):
        specs = {
            "constant:level=20": (0.0, 20),
            "ramp:start_level=0,end_level=10,t_start=0,t_end=10": (5.0, 5),
            "diurnal:base=2,peak=10,period=40": (20.0, 10),
            "burst:base=1,burst_level=9,at=10,duration=5": (12.0, 9),
            "flash:base=4,peak=40,at=10,rise=5,fall=10": (15.0, 40),
            "piecewise:steps=0/4|30/40": (31.0, 40),
        }
        for spec, (t, expected) in specs.items():
            assert from_spec(spec).level(t) == expected, spec

    def test_unknown_type_lists_valid_ones(self):
        with pytest.raises(ControlError, match="flash"):
            from_spec("tsunami:level=3")

    def test_unknown_option_is_actionable(self):
        with pytest.raises(ControlError, match="valid options"):
            from_spec("constant:height=3")

    def test_bad_value_is_actionable(self):
        with pytest.raises(ControlError, match="level"):
            from_spec("constant:level=tall")

    def test_missing_required_option(self):
        with pytest.raises(ControlError, match="missing required"):
            from_spec("burst:base=1")

    def test_bad_piecewise_steps(self):
        with pytest.raises(ControlError, match="time/level"):
            from_spec("piecewise:steps=0-4")

    def test_piecewise_rejects_extra_segments(self):
        # A mistyped separator must not silently drop a step.
        with pytest.raises(ControlError, match="time/level"):
            from_spec("piecewise:steps=0/4/40|60/4")


class TestPolicyRegistry:
    def test_builtins_registered(self):
        names = available_policies()
        for expected in ("hold", "reactive", "predictive", "oracle"):
            assert expected in names

    def test_make_policy_coerces_string_options(self):
        policy = make_policy(
            "reactive", {"hysteresis": "3", "up_utilization": "0.8"}
        )
        assert policy.hysteresis == 3
        assert policy.up_utilization == 0.8

    def test_make_policy_unknown_name(self):
        with pytest.raises(ControlError, match="reactive"):
            make_policy("galaxy-brain")

    def test_make_policy_unknown_option(self):
        with pytest.raises(ControlError, match="valid options"):
            make_policy("reactive", {"vibes": "1"})

    def test_make_policy_rejects_bad_boolean_string(self):
        from repro.control import register_policy
        from repro.control.policy import ControlPolicy, _POLICIES

        class FlaggedPolicy(ControlPolicy):
            name = "flagged-test"

            def __init__(self, strict: bool = True):
                self.strict = strict

            def decide(self, ctx):
                return ControlDecision.hold()

        register_policy(FlaggedPolicy)
        try:
            assert make_policy("flagged-test", {"strict": "no"}).strict is False
            assert make_policy("flagged-test", {"strict": "ON"}).strict is True
            with pytest.raises(ControlError, match="boolean"):
                make_policy("flagged-test", {"strict": "maybe"})
        finally:
            del _POLICIES["flagged-test"]

    def test_instance_passes_through(self):
        instance = ReactivePolicy(hysteresis=1)
        assert make_policy(instance) is instance
        with pytest.raises(ControlError):
            make_policy(instance, {"hysteresis": "2"})

    def test_decision_validation(self):
        with pytest.raises(ControlError):
            ControlDecision("panic")
        with pytest.raises(ControlError):
            ControlDecision("replan", demand=-1.0)

    def test_policy_option_validation(self):
        with pytest.raises(ControlError):
            ReactivePolicy(hysteresis=0)
        with pytest.raises(ControlError):
            ReactivePolicy(down_fraction=0.95)  # above up_fraction


class TestTraceFixtures:
    def test_fixture_names_resolvable(self):
        from repro.control import fixture, fixtures

        names = fixtures()
        assert "wikipedia_flash" in names
        assert len(names) >= 3
        for name in names:
            trace = fixture(name)
            levels = trace.sample(0.0, 150.0, 5.0)
            assert max(levels) > min(levels)  # every fixture varies
            assert min(levels) >= 0

    def test_fixture_from_spec_bare_name(self):
        trace = from_spec("wikipedia_flash")
        assert trace.name == "fixture:wikipedia_flash"
        assert trace.level(40.0) == 40  # the viral spike

    def test_fixture_from_spec_scaled(self):
        base = from_spec("wikipedia_flash")
        doubled = from_spec("fixture:name=wikipedia_flash,scale=2")
        assert doubled.level(40.0) == 2 * base.level(40.0)

    def test_unknown_fixture_is_actionable(self):
        from repro.control import fixture

        with pytest.raises(ControlError, match="wikipedia_flash"):
            fixture("slashdot_effect")
        with pytest.raises(ControlError, match="fixture"):
            from_spec("fixture:name=slashdot_effect")

    def test_fixture_spec_rejects_unknown_keys(self):
        with pytest.raises(ControlError, match="scale"):
            from_spec("fixture:name=wikipedia_flash,amplitude=3")

    def test_fixture_names_round_trip_through_from_spec(self):
        # Trace.name of a fixture ("fixture:NAME" / "fixture:NAME*SCALE")
        # is itself a valid spec that rebuilds an equivalent trace.
        from repro.control import fixture, fixtures

        for name in fixtures():
            for scale in (1.0, 2.5):
                original = fixture(name, scale=scale)
                rebuilt = from_spec(original.name)
                assert rebuilt.name == original.name
                assert rebuilt.sample(0.0, 150.0, 2.5) == original.sample(
                    0.0, 150.0, 2.5
                )

    def test_fixture_compact_spec_forms(self):
        assert from_spec("fixture:black_friday").level(25.0) == 24
        assert from_spec("fixture:black_friday*2").level(25.0) == 48
        with pytest.raises(ControlError, match="not a valid float"):
            from_spec("fixture:black_friday*fast")
        with pytest.raises(ControlError, match="available fixtures"):
            from_spec("fixture:slashdot_effect*2")

    def test_sweep_rejects_unknown_policy_eagerly(self):
        from repro.api import PlanningSession
        from repro.errors import PlanningError, ReproError
        from repro.platforms.pool import NodePool

        session = PlanningSession()
        pool = NodePool.homogeneous(6, 265.0)
        with pytest.raises(ReproError, match="unknown control policy"):
            session.control_sweep(
                pool, 1000.0, traces=("constant:level=2",),
                policies=("vibes-based",), epochs=2,
            )
        with pytest.raises(PlanningError, match="max_workers >= 1"):
            session.control_sweep(
                pool, 1000.0, traces=("constant:level=2",),
                policies=("hold",), max_workers=0, epochs=2,
            )


class TestTypedPolicyOptions:
    def test_builtins_declare_options_types(self):
        from repro.control import (
            HoldOptions,
            OracleOptions,
            PredictiveOptions,
            ReactiveOptions,
        )
        from repro.control.policy import _POLICIES

        expected = {
            "hold": HoldOptions,
            "reactive": ReactiveOptions,
            "predictive": PredictiveOptions,
            "oracle": OracleOptions,
        }
        for name, options_type in expected.items():
            assert _POLICIES[name].options_type is options_type

    def test_options_validate_eagerly(self):
        from repro.control import ReactiveOptions

        with pytest.raises(ControlError, match="hysteresis"):
            ReactiveOptions(hysteresis=0)
        with pytest.raises(ControlError, match="down_fraction"):
            ReactiveOptions(down_fraction=0.95)

    def test_coercion_shares_registry_machinery(self):
        # The same string-to-field-type conversion the planner options
        # use — including annotated floats and ints — with ControlError
        # as the error domain.
        from repro.control import PredictiveOptions

        options = PredictiveOptions.coerce(
            {"lookahead": "4", "headroom": "1.5"}
        )
        assert options.lookahead == 4
        assert options.headroom == 1.5
        with pytest.raises(ControlError, match="cannot parse"):
            PredictiveOptions.coerce({"lookahead": "soon"})

    def test_make_policy_resolves_through_typed_options(self):
        policy = make_policy(
            "predictive", {"lookahead": "4", "window": "5"}
        )
        assert policy.lookahead == 4
        assert policy.window == 5

    def test_describe_still_lists_options(self):
        assert "hysteresis=1" in ReactivePolicy(hysteresis=1).describe()


class TestControlSweep:
    POOL = NodePool.uniform_random(10, low=80, high=400, seed=7)
    KW = dict(epochs=5, epoch_duration=2.0, initial_fraction=0.4)

    def test_grid_order_and_labels(self):
        session = PlanningSession()
        cells = session.control_sweep(
            self.POOL, WORK,
            traces=("constant:level=4", "constant:level=8"),
            policies=("hold",), seeds=(0, 1),
            parallel=False, **self.KW,
        )
        assert [cell.label for cell in cells] == [
            "constant:level=4/hold/s0",
            "constant:level=4/hold/s1",
            "constant:level=8/hold/s0",
            "constant:level=8/hold/s1",
        ]
        for cell in cells:
            assert cell.timeline.policy == "hold"
            assert len(cell.timeline.records) == 5

    def test_parallel_matches_serial(self):
        session = PlanningSession()
        grid = dict(
            traces=("wikipedia_flash", "constant:level=6"),
            policies=("hold", "reactive"),
            seeds=(0,),
        )
        serial = session.control_sweep(
            self.POOL, WORK, parallel=False, **grid, **self.KW
        )
        parallel = session.control_sweep(
            self.POOL, WORK, parallel=True, max_workers=2,
            **grid, **self.KW,
        )
        assert [c.timeline for c in serial] == [
            c.timeline for c in parallel
        ]

    def test_policy_options_apply_per_policy(self):
        session = PlanningSession()
        cells = session.control_sweep(
            self.POOL, WORK,
            traces=("constant:level=20",),
            policies=("reactive",),
            seeds=(0,),
            policy_options={"reactive": {"hysteresis": 1, "cooldown": 1}},
            parallel=False, **self.KW,
        )
        assert cells[0].timeline.redeploys >= 1  # fast-twitch acted

    def test_validation(self):
        from repro.errors import PlanningError

        session = PlanningSession()
        with pytest.raises(PlanningError, match="at least one"):
            session.control_sweep(self.POOL, WORK, traces=())
        with pytest.raises(ControlError):
            session.control_sweep(
                self.POOL, WORK, traces=("tsunami:level=3",)
            )
        with pytest.raises(PlanningError, match="picklable"):
            session.control_sweep(self.POOL, WORK, traces=(constant(4),))
        with pytest.raises(PlanningError, match="unswept"):
            session.control_sweep(
                self.POOL, WORK, traces=("constant:level=4",),
                policies=("hold",),
                policy_options={"reactive": {"hysteresis": 1}},
            )


class TestMigrationCostModel:
    def test_identical_hierarchies_touch_nothing(self):
        pool = NodePool.homogeneous(6, 265.0)
        tree = star_deployment(pool)
        model = MigrationCostModel(restart_seconds=0.5)
        assert model.touched_nodes(tree, tree.copy()) == 0

    def test_restart_relaunches_the_whole_target(self):
        # Stop-the-world pricing bills every target element, however
        # small the structural diff: a restart to an identical tree
        # costs the same as a cold start of it.
        pool = NodePool.homogeneous(6, 265.0)
        tree = star_deployment(pool)
        model = MigrationCostModel(restart_seconds=0.5)
        full = model.cost_seconds(None, tree, DEFAULT_PARAMS)
        assert model.cost_seconds(tree, tree.copy(), DEFAULT_PARAMS) == full
        per_node = model.launch_seconds + model.per_node_seconds(
            DEFAULT_PARAMS
        )
        assert full == pytest.approx(0.5 + 6 * per_node)

    def test_cold_start_touches_everything(self):
        pool = NodePool.homogeneous(6, 265.0)
        tree = star_deployment(pool)
        assert MigrationCostModel().touched_nodes(None, tree) == 6

    def test_added_node_is_touched(self):
        pool = NodePool.homogeneous(6, 265.0)
        before = star_deployment(pool)
        after = before.copy()
        after.add_server("extra", 300.0, before.root)
        assert MigrationCostModel().touched_nodes(before, after) == 1

    def test_cost_scales_with_comm_constants(self):
        pool = NodePool.homogeneous(6, 265.0)
        tree = star_deployment(pool)
        slow = ModelParams(bandwidth=10.0)
        fast = ModelParams(bandwidth=1000.0)
        model = MigrationCostModel(restart_seconds=0.0)
        assert model.cost_seconds(None, tree, slow) > model.cost_seconds(
            None, tree, fast
        )


class TestControlLoop:
    def test_determinism_same_seed_identical_timeline(self):
        first = small_loop().run()
        second = small_loop().run()
        assert first == second
        assert first.records == second.records
        # The run is non-trivial: it adapted at least once and served load.
        assert first.redeploys >= 1
        assert first.total_served > 0

    def test_different_seed_may_differ_but_stays_valid(self):
        timeline = small_loop(seed=6).run()
        assert len(timeline.records) == 10
        assert timeline.total_served > 0

    def test_hysteresis_prevents_oscillation_on_plateau(self):
        # A plateau the initial deployment handles: with default
        # hysteresis the controller must settle, not bounce between
        # scale-up and scale-down around the thresholds.
        timeline = small_loop(
            trace=constant(6),
            policy="reactive",
            policy_options=None,  # library defaults: hysteresis=2
            epochs=12,
            initial_fraction=0.6,
        ).run()
        assert timeline.redeploys <= 1
        # After any initial adjustment the controller stays put.
        settled = timeline.records[4:]
        assert all(not record.applied for record in settled)
        # And it never alternates grow/shrink: at most one direction used.
        applied = [r.action for r in timeline.records if r.applied]
        assert len(set(applied)) <= 1

    def test_plateau_under_saturation_settles_too(self):
        # Saturated plateau with spares available: the controller may
        # grow, but must not thrash once the pool is consumed.
        timeline = small_loop(
            trace=constant(25), epochs=12, initial_fraction=0.4
        ).run()
        settled = timeline.records[6:]
        assert all(not record.applied for record in settled)

    def test_cooldown_never_blocks_before_first_redeploy(self):
        # A cooldown longer than the whole run must not inert the
        # controller: cooldown gates on actual redeploys, not on the
        # start-of-run sentinel.
        timeline = small_loop(
            trace=constant(20),
            policy_options={"hysteresis": 1, "cooldown": 50},
            epochs=4,
            initial_fraction=0.4,
        ).run()
        assert all(
            "cooldown" not in record.reason or record.index > 0
            for record in timeline.records
        )
        assert timeline.redeploys >= 1  # the saturated start still scales

    def test_hysteresis_window_never_spans_a_redeploy(self):
        # hysteresis > cooldown + 1 is a valid configuration; the policy
        # must wait for a window measured entirely on the new deployment
        # instead of judging it by stale pre-redeploy rates.
        timeline = small_loop(
            policy_options={"hysteresis": 3, "cooldown": 1}, epochs=12
        ).run()
        applied = [
            i for i, record in enumerate(timeline.records) if record.applied
        ]
        assert applied and applied[0] + 2 < len(timeline.records)
        first = applied[0]
        assert "cooldown" in timeline.records[first + 1].reason
        assert "spans a redeploy" in timeline.records[first + 2].reason
        assert not timeline.records[first + 2].applied

    def test_min_nodes_floor_respected_on_shrink(self):
        timeline = small_loop(
            trace=piecewise([(0.0, 15), (8.0, 1)]),
            min_nodes=5,
            epochs=12,
            initial_fraction=0.6,
        ).run()
        for record in timeline.records:
            assert record.deployed_nodes >= 5
        # The floor actually blocked a shrink (not just never triggered).
        assert any(
            "below min_nodes" in record.reason
            for record in timeline.records
        )

    def test_self_is_not_a_policy_option(self):
        with pytest.raises(ControlError, match="valid options"):
            make_policy("reactive", {"self": "1"})

    def test_defaultless_option_rejects_strings_at_parse_time(self):
        from repro.control import register_policy
        from repro.control.policy import ControlPolicy, _POLICIES

        class ThresholdPolicy(ControlPolicy):
            name = "threshold-test"

            def __init__(self, threshold):
                self.threshold = threshold

            def decide(self, ctx):
                return ControlDecision.hold()

        register_policy(ThresholdPolicy)
        try:
            with pytest.raises(ControlError, match="no default"):
                make_policy("threshold-test", {"threshold": "0.5"})
            # Pre-typed values still pass straight through.
            assert make_policy(
                "threshold-test", {"threshold": 0.5}
            ).threshold == 0.5
        finally:
            del _POLICIES["threshold-test"]

    def test_redeploy_epoch_records_pre_act_deployment(self):
        # Every record describes the deployment that served the epoch;
        # an applied redeploy shows its new size from the next row on.
        timeline = small_loop().run()
        applied = [
            i for i, record in enumerate(timeline.records) if record.applied
        ]
        assert applied and applied[0] + 1 < len(timeline.records)
        before = timeline.records[applied[0]]
        after = timeline.records[applied[0] + 1]
        assert before.deployed_nodes != after.deployed_nodes

    def test_node_accounting_invariant(self):
        timeline = small_loop().run()
        for record in timeline.records:
            assert record.deployed_nodes + record.spares == 10
            assert record.deployed_nodes >= 2

    def test_offered_follows_trace(self):
        trace = piecewise([(0.0, 3), (10.0, 8)])
        timeline = small_loop(
            trace=trace, policy="hold", policy_options=None,
            epochs=8, epoch_duration=2.5,
        ).run()
        for record in timeline.records:
            assert record.offered == trace.level(record.start)

    def test_demand_blind_planner_cannot_invert_a_shrink(self):
        # A shrink decision carries a demand cap; a planner without
        # CAP_DEMAND (star) would ignore it and plan the full pool —
        # a scale-up, the opposite of the decision.  The loop must
        # refuse instead.
        timeline = small_loop(
            trace=piecewise([(0.0, 18), (8.0, 2)]),
            base_method="star",
            epochs=12,
            initial_fraction=0.6,
        ).run()
        nodes_by_epoch = [r.deployed_nodes for r in timeline.records]
        # Replans may grow (demand=None scale-ups are legitimate) but a
        # demand-capped shrink must never be realized as growth.
        for record in timeline.records:
            if "ignores demand caps" in record.reason:
                assert record.action == "replan"
                assert not record.applied
        assert nodes_by_epoch[-1] >= min(nodes_by_epoch)
        shrink_refusals = [
            r for r in timeline.records if "ignores demand caps" in r.reason
        ]
        assert shrink_refusals  # the guard actually fired on this trace

    def test_hold_policy_never_redeploys(self):
        timeline = small_loop(policy="hold", policy_options=None).run()
        assert timeline.redeploys == 0
        assert all(record.action == "hold" for record in timeline.records)

    def test_served_totals_consistent(self):
        timeline = small_loop().run()
        assert timeline.served_in_epochs <= timeline.total_served
        assert timeline.mean_served_rate > 0.0
        assert timeline.migration_downtime >= 0.0

    def test_describe_mentions_policy_and_redeploys(self):
        timeline = small_loop().run()
        text = timeline.describe()
        assert "reactive" in text
        assert "redeploys" in text

    def test_session_control_run(self):
        session = PlanningSession()
        timeline = session.control_run(
            NodePool.uniform_random(8, low=80, high=400, seed=2),
            WORK,
            trace=constant(4),
            policy="hold",
            epochs=3,
            epoch_duration=2.0,
        )
        assert len(timeline.records) == 3
        assert timeline.policy == "hold"

    def test_validation_errors(self):
        pool = NodePool.uniform_random(8, low=80, high=400, seed=2)
        with pytest.raises(ControlError):
            small_loop(pool=NodePool.homogeneous(1, 265.0))
        with pytest.raises(ControlError):
            small_loop(trace="flash")  # not a Trace
        with pytest.raises(ControlError):
            small_loop(pool=pool, epochs=0)
        with pytest.raises(ControlError):
            small_loop(pool=pool, epoch_duration=0.0)
        with pytest.raises(ControlError):
            small_loop(pool=pool, initial_fraction=1.5)
        with pytest.raises(ControlError):
            small_loop(pool=pool, think_time=-0.1)

    def test_demand_unit_not_inflated_by_drain(self):
        # Stopping clients leaves their in-flight requests draining into
        # the next window, whose `offered` no longer counts them; those
        # windows must not ratchet up the demand-unit estimate.
        shared = dict(
            policy="hold", policy_options=None, epochs=6, epoch_duration=2.0
        )
        # Reference: 2 unsaturated clients measure the true per-client
        # rate with no population changes anywhere.
        reference = small_loop(trace=constant(2), **shared)
        reference.run()
        dropping = small_loop(
            trace=piecewise([(0.0, 20), (8.0, 2)]), **shared
        )
        dropping.run()
        # The drop run's estimate comes from its clean 2-client windows;
        # had the drain window calibrated, 18 stopped clients' in-flight
        # completions would push it well above the true rate.
        assert (
            dropping.demand_unit_estimate
            <= reference.demand_unit_estimate * 1.05
        )
        assert dropping.demand_unit_estimate > 0.0

    def test_demand_unit_survives_multi_epoch_drain(self):
        # A 20 -> 2 collapse with short epochs: the drain outlasts the
        # drop epoch, so a one-epoch skip is not enough — calibration
        # must wait until every stopped client has gone quiet.
        shared = dict(
            policy="hold", policy_options=None, epochs=10,
            epoch_duration=0.5, initial_fraction=1.0,
        )
        reference = small_loop(trace=constant(2), **shared)
        reference.run()
        collapsing = small_loop(
            trace=piecewise([(0.0, 20), (0.5, 2)]), **shared
        )
        collapsing.run()
        assert (
            collapsing.demand_unit_estimate
            <= reference.demand_unit_estimate * 1.05
        )

    def test_lazy_control_exports(self):
        import repro

        assert repro.ControlLoop is ControlLoop
        with pytest.raises(AttributeError):
            repro.NotAThing

    def test_overhead_telemetry_present_but_not_in_timeline(self):
        loop = small_loop()
        timeline = loop.run()
        assert loop.overhead_seconds > 0.0
        # Wall-clock must never leak into the deterministic timeline.
        assert not hasattr(timeline, "overhead_seconds")


class TestAutoscalingExampleClaims:
    """The examples/autoscaling.py headline numbers, kept honest."""

    @staticmethod
    def _example():
        import sys
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent / "examples"
        sys.path.insert(0, str(examples))
        try:
            import autoscaling
        finally:
            sys.path.remove(str(examples))
        return autoscaling

    def test_reactive_recovers_oracle_with_fewer_redeploys(self):
        timelines = self._example().run_policies(
            verbose=False, policies=("reactive", "oracle")
        )
        reactive = timelines["reactive"]
        oracle = timelines["oracle"]
        assert reactive.total_served >= 0.85 * oracle.total_served
        assert reactive.redeploys < oracle.redeploys

    def test_live_migration_beats_restart_on_served_and_downtime(self):
        # Identical seed/trace/policy; only the migration mechanism
        # differs.  Live must serve strictly more with strictly less
        # downtime, and both timelines must itemize downtime per step.
        modes = self._example().run_migration_modes(verbose=False)
        live, restart = modes["live"], modes["restart"]
        assert live.migration == "live"
        assert restart.migration == "restart"
        assert live.redeploys >= 1 and restart.redeploys >= 1
        assert live.total_served > restart.total_served
        assert live.migration_downtime < restart.migration_downtime
        for timeline in (live, restart):
            for record in timeline.records:
                if record.applied:
                    assert record.migration_steps
                    assert record.migration_seconds == pytest.approx(
                        sum(s.downtime for s in record.migration_steps)
                    )
        # Restart itemizes whole-platform outages; live itemizes
        # per-subtree drains and drain-free growth.
        restart_ops = {
            s.op
            for r in restart.records
            for s in r.migration_steps
        }
        live_ops = {
            s.op for r in live.records for s in r.migration_steps
        }
        assert restart_ops == {"restart"}
        assert live_ops <= {"drain", "grow"} and live_ops


class TestTraceRecorderRoundTrip:
    """The sim/trace.py recorder across a multi-epoch controller run."""

    def test_records_survive_redeploys(self):
        recorder = TraceRecorder()
        timeline = small_loop(recorder=recorder).run()
        assert timeline.redeploys >= 1
        assert len(recorder) > 0
        # The first redeploy happened mid-run; records must span it.
        first_apply = next(
            record for record in timeline.records if record.applied
        )
        times = [record.time for record in recorder]
        assert min(times) < first_apply.end <= max(times)
        # Nodes deployed only after the redeploy (spares consumed by the
        # improve step) appear in the trace: the recorder followed the
        # platform across generations.
        nodes_seen = {record.node for record in recorder}
        assert len(nodes_seen) > 4
        kinds = {record.kind for record in recorder}
        assert {"msg_recv", "compute"} <= kinds

    def test_recorder_queries_round_trip(self):
        recorder = TraceRecorder()
        small_loop(recorder=recorder, epochs=4).run()
        by_kind = recorder.by_kind("compute")
        assert by_kind and all(r.kind == "compute" for r in by_kind)
        some_node = by_kind[0].node
        assert all(
            r.node == some_node for r in recorder.by_node(some_node)
        )
        some_request = next(
            r.request_id for r in recorder if r.request_id is not None
        )
        per_request = recorder.for_request(some_request)
        assert per_request
        assert [r.time for r in per_request] == sorted(
            r.time for r in per_request
        )

    def test_detached_recorder_is_zero_cost_and_zero_effect(self):
        # Recording must not perturb the simulation: the timeline with a
        # recorder attached is bit-identical to the one without.
        with_recorder = small_loop(recorder=TraceRecorder()).run()
        without = small_loop().run()
        assert with_recorder == without
