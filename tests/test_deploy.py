"""Deployment plans: serialization, validation, launching."""

import pytest

from repro.core.hierarchy import Hierarchy
from repro.core.params import LevelSizes, ModelParams
from repro.deploy.godiet import GoDIET
from repro.deploy.plan import DeploymentPlan
from repro.deploy.validation import check_plan
from repro.deploy.xml_io import (
    hierarchy_from_xml,
    hierarchy_to_xml,
    plan_from_xml,
    plan_to_xml,
)
from repro.errors import DeploymentError
from repro.middleware.client import ClosedLoopClient
from repro.platforms.pool import NodePool


def sample_hierarchy() -> Hierarchy:
    h = Hierarchy()
    h.set_root("root", 265.0)
    h.add_server("s1", 250.0, "root")
    h.add_agent("a1", 240.0, "root")
    h.add_server("s2", 230.0, "a1")
    h.add_server("s3", 220.0, "a1")
    return h


def sample_plan(**overrides) -> DeploymentPlan:
    defaults = dict(
        hierarchy=sample_hierarchy(),
        params=ModelParams(),
        app_work=16.0,
        method="test",
        metadata={"note": "sample"},
    )
    defaults.update(overrides)
    return DeploymentPlan(**defaults)


class TestDeploymentPlan:
    def test_predicted_throughput_positive(self):
        assert sample_plan().predicted_throughput > 0

    def test_invalid_hierarchy_rejected(self):
        h = Hierarchy()
        h.set_root("root", 1.0)  # no children
        with pytest.raises(Exception):
            DeploymentPlan(hierarchy=h, params=ModelParams(), app_work=1.0)

    def test_nonpositive_work_rejected(self):
        with pytest.raises(DeploymentError):
            sample_plan(app_work=0.0)

    def test_describe(self):
        text = sample_plan().describe()
        assert "5 nodes" in text
        assert "req/s" in text


class TestXmlRoundTrip:
    def test_hierarchy_round_trip(self):
        h = sample_hierarchy()
        restored = hierarchy_from_xml(hierarchy_to_xml(h))
        assert restored.nodes == h.nodes
        assert restored.shape_signature() == h.shape_signature()
        for node in h:
            assert restored.power(node) == h.power(node)
            assert restored.parent(node) == h.parent(node)

    def test_plan_round_trip(self):
        plan = sample_plan(
            params=ModelParams(
                wreq=0.2,
                bandwidth=500.0,
                agent_sizes=LevelSizes(sreq=0.01, srep=0.02),
            )
        )
        restored = plan_from_xml(plan_to_xml(plan))
        assert restored.app_work == plan.app_work
        assert restored.method == plan.method
        assert restored.metadata == {"note": "sample"}
        assert restored.params.wreq == plan.params.wreq
        assert restored.params.bandwidth == plan.params.bandwidth
        assert restored.params.agent_sizes == plan.params.agent_sizes
        assert restored.predicted_throughput == pytest.approx(
            plan.predicted_throughput
        )

    def test_xml_mentions_roles(self):
        text = plan_to_xml(sample_plan())
        assert "<agent" in text and "<server" in text
        assert 'name="root"' in text

    def test_malformed_xml_rejected(self):
        with pytest.raises(DeploymentError):
            hierarchy_from_xml("<oops")

    def test_missing_sections_rejected(self):
        with pytest.raises(DeploymentError):
            hierarchy_from_xml("<diet_deployment/>")

    def test_unknown_node_in_hierarchy_rejected(self):
        text = """
        <diet_deployment>
          <resources><node name="a" power="1.0"/></resources>
          <hierarchy><agent name="a"><server name="ghost"/></agent></hierarchy>
        </diet_deployment>
        """
        with pytest.raises(DeploymentError):
            hierarchy_from_xml(text)

    def test_server_root_rejected(self):
        text = """
        <diet_deployment>
          <resources><node name="a" power="1.0"/></resources>
          <hierarchy><server name="a"/></hierarchy>
        </diet_deployment>
        """
        with pytest.raises(DeploymentError):
            hierarchy_from_xml(text)


class TestValidation:
    def test_clean_plan_has_no_errors(self):
        issues = check_plan(sample_plan())
        assert not [i for i in issues if i.is_error]

    def test_pool_cross_check_detects_unknown_node(self):
        pool = NodePool.heterogeneous([265.0], prefix="other")
        issues = check_plan(sample_plan(), pool=pool)
        codes = {i.code for i in issues if i.is_error}
        assert "unknown-node" in codes

    def test_pool_cross_check_detects_power_mismatch(self):
        h = sample_hierarchy()
        nodes = [
            (str(n), h.power(n)) for n in h
        ]
        from repro.platforms.node import Node

        pool = NodePool(
            Node(power=p * 2, name=name) for name, p in nodes
        )
        issues = check_plan(sample_plan(), pool=pool)
        assert any(i.code == "power-mismatch" for i in issues)

    def test_weak_agent_warning(self):
        h = Hierarchy()
        h.set_root("weak", 5.0)  # a 5 MFlop/s agent
        for i in range(6):
            h.add_server(f"s{i}", 500.0, "weak")
        plan = DeploymentPlan(hierarchy=h, params=ModelParams(), app_work=16.0)
        issues = check_plan(plan)
        assert any(i.code == "agent-bottleneck" for i in issues)

    def test_overprovision_warning(self):
        # Tiny requests on a big star: massively service-overprovisioned.
        h = Hierarchy()
        h.set_root("root", 265.0)
        for i in range(30):
            h.add_server(f"s{i}", 265.0, "root")
        plan = DeploymentPlan(hierarchy=h, params=ModelParams(), app_work=2e-3)
        issues = check_plan(plan)
        assert any(i.code == "overprovisioned-servers" for i in issues)


class TestGoDIET:
    def test_launch_and_run(self):
        plan = sample_plan()
        platform = GoDIET().launch(plan)
        client = ClosedLoopClient(platform.system, "c0")
        client.start()
        platform.sim.run_until(5.0)
        assert platform.system.total_completed() > 0

    def test_launch_latency_sets_ready_time(self):
        platform = GoDIET(launch_latency=0.5).launch(sample_plan())
        assert platform.ready_at == pytest.approx(0.5 * 5)

    def test_launch_rejects_invalid_pool(self):
        pool = NodePool.heterogeneous([1.0], prefix="other")
        with pytest.raises(DeploymentError):
            GoDIET().launch(sample_plan(), pool=pool)

    def test_negative_latency_rejected(self):
        with pytest.raises(DeploymentError):
            GoDIET(launch_latency=-1.0)
