"""Timeout-modelled failure detection: inferred — never announced.

Locks down the PR's robustness contracts:

* :class:`DetectionParams` validates, serializes to a spec string, and
  ``parse_detection`` round-trips it exactly (property-tested);
* middleware watchdogs — agents only suspect their *direct* children
  (hierarchical detection), silent crashes keep traffic flowing through
  the survivors, and late replies from a written-off child are ignored;
* the monitor's suspicion lifecycle — a node that answers inside its
  grace window is *never* confirmed dead (property-tested), and a
  re-integrated suspect leaves the fan-out wiring bit-identical
  (false positives are survivable, not just avoidable);
* the control loop — a crashed subtree's repair applies within
  ``threshold x timeout + grace + one epoch`` of injection, with the
  measured detection latency on the timeline; transient stragglers are
  re-integrated with zero evictions and zero lost conversations;
  persistently degraded servers are drained-and-replaced by ``evict``;
  ``spare_reserve`` holds nodes back from scale-ups;
* determinism — detection runs are bit-identical per seed, including
  across ``control_sweep`` process pools.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NodePool, dgemm_mflop
from repro.api import PlanningSession
from repro.control.loop import ControlLoop, DetectionRecord
from repro.control.monitor import SLOMonitor
from repro.control.policy import ControlDecision
from repro.control.traces import constant
from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.errors import ControlError
from repro.faults import crash_storm, from_spec, subtree_storm
from repro.middleware.detection import (
    DetectionError,
    DetectionParams,
    DetectionState,
    parse_detection,
)
from repro.middleware.system import MiddlewareSystem
from repro.sim.engine import Simulator
from repro.sim.stats import IntervalCounter

WORK = dgemm_mflop(200)


@pytest.fixture
def p() -> ModelParams:
    return ModelParams()


def two_level() -> Hierarchy:
    """root -> {a1 -> {s1, s2}, s3}: one agent subtree plus a survivor."""
    h = Hierarchy()
    h.set_root("root", 265.0)
    h.add_agent("a1", 265.0, "root")
    h.add_server("s1", 265.0, "a1")
    h.add_server("s2", 265.0, "a1")
    h.add_server("s3", 265.0, "root")
    return h


def wiring(system: MiddlewareSystem) -> dict[str, tuple[str, ...]]:
    return {
        name: tuple(child.name for child in agent.children)
        for name, agent in sorted(system.agents.items())
    }


def pump(system: MiddlewareSystem, sim: Simulator, until: float,
         interval: float = 0.3) -> list:
    """Closed-ish drip of requests until ``until``; returns completions."""
    done: list = []
    tick = sim.now

    def one_round() -> None:
        system.submit("client", on_complete=done.append)

    while tick < until:
        sim.schedule(max(0.0, tick - sim.now), one_round)
        tick += interval
    sim.run_until(until)
    return done


# ------------------------------------------------------------------ #
# params + spec grammar


class TestDetectionParams:
    def test_defaults_validate(self):
        params = DetectionParams()
        assert params.timeout > 0 and params.suspicion_threshold >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
            {"backoff": 0.5},
            {"suspicion_threshold": 0},
            {"grace": -0.1},
        ],
    )
    def test_bad_params_raise(self, kwargs):
        with pytest.raises(DetectionError):
            DetectionParams(**kwargs)

    def test_worst_case_round_sums_the_ladder(self):
        params = DetectionParams(timeout=1.0, retries=2, backoff=2.0)
        assert params.worst_case_round == pytest.approx(1.0 + 2.0 + 4.0)

    @given(
        timeout=st.floats(0.01, 60.0, allow_nan=False),
        retries=st.integers(0, 5),
        backoff=st.floats(1.0, 4.0, allow_nan=False),
        threshold=st.integers(1, 10),
        grace=st.floats(0.0, 30.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_spec_round_trips_exactly(
        self, timeout, retries, backoff, threshold, grace
    ):
        params = DetectionParams(
            timeout=timeout, retries=retries, backoff=backoff,
            suspicion_threshold=threshold, grace=grace,
        )
        parsed, reserve = parse_detection(params.spec)
        assert parsed == params
        assert reserve is None

    def test_reserve_key_parses_separately(self):
        params, reserve = parse_detection("timeout=0.5,reserve=0.25")
        assert params.timeout == 0.5
        assert reserve == 0.25

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "timeout",
            "timeout=abc",
            "bogus=1",
            "timeout=0.5,timeout=0.6",
            "reserve=1.0",
            "reserve=-0.1",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(DetectionError):
            parse_detection(spec)


# ------------------------------------------------------------------ #
# middleware watchdogs


class TestWatchdogs:
    def test_silent_crash_is_inferred_by_the_parent_only(self, p):
        """Hierarchical detection: root suspects a1, never a1's servers."""
        detection = DetectionParams(
            timeout=0.2, retries=1, backoff=2.0, suspicion_threshold=2
        )
        sim = Simulator()
        system = MiddlewareSystem(
            sim, two_level(), p, WORK, detection=detection
        )
        pump(system, sim, 5.0)
        system.fail_silent("a1")
        pump(system, sim, 12.0)
        suspects = set(system.liveness.suspects)
        assert "a1" in suspects
        assert "s1" not in suspects and "s2" not in suspects
        entry = system.liveness.get("a1")
        # Crossing happened after the full retry ladder ran at least once.
        assert entry.crossed_at is not None
        assert entry.crossed_at >= 5.0 + detection.timeout

    def test_survivors_keep_serving_through_a_silent_crash(self, p):
        detection = DetectionParams(timeout=0.2, suspicion_threshold=2)
        sim = Simulator()
        system = MiddlewareSystem(
            sim, two_level(), p, WORK, detection=detection
        )
        before = len(pump(system, sim, 5.0))
        system.fail_silent("a1")
        after = len(pump(system, sim, 15.0))
        assert after > before  # s3 keeps answering
        assert system.lost_conversations == 0

    def test_oracle_mode_runs_have_no_liveness_table(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, two_level(), p, WORK)
        assert system.detection is None and system.liveness is None

    def test_confirmation_time_excision_dead_letters_nothing_lost(self, p):
        detection = DetectionParams(timeout=0.2, suspicion_threshold=2)
        sim = Simulator()
        system = MiddlewareSystem(
            sim, two_level(), p, WORK, detection=detection
        )
        pump(system, sim, 5.0)
        system.fail_silent("a1")
        pump(system, sim, 8.0)
        members, dead = system.fail_subtree("a1")
        assert set(members) == {"a1", "s1", "s2"}
        pump(system, sim, 14.0)
        assert system.lost_conversations == 0
        assert "a1" not in wiring(system)["root"]


# ------------------------------------------------------------------ #
# suspicion lifecycle (monitor)


def _observed_system(p, detection):
    sim = Simulator()
    system = MiddlewareSystem(sim, two_level(), p, WORK, detection=detection)
    monitor = SLOMonitor(IntervalCounter())
    monitor.attach(system)
    return sim, system, monitor


class TestSuspicionLifecycle:
    @given(
        threshold=st.integers(1, 4),
        grace=st.floats(1.0, 20.0, allow_nan=False),
        answer_fraction=st.floats(0.0, 0.95, allow_nan=False),
        windows=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_answer_within_grace_is_never_confirmed(
        self, threshold, grace, answer_fraction, windows
    ):
        """False positives are survivable: an answer cancels suspicion."""
        p = ModelParams()
        detection = DetectionParams(
            timeout=0.5, suspicion_threshold=threshold, grace=grace
        )
        sim, system, monitor = _observed_system(p, detection)
        # Cross the threshold with synthetic watchdog evidence ...
        crossing = 1.0
        for index in range(threshold):
            system.liveness.note_timeout("s3", crossing + 0.1 * index)
        crossed_at = system.liveness.get("s3").crossed_at
        assert crossed_at is not None
        # ... then answer strictly inside the grace window.
        answer_at = crossed_at + answer_fraction * grace
        epoch = 5.0
        confirmed: list = []
        reintegrated = False
        answered = False
        for index in range(windows + 3):
            end = (index + 1) * epoch
            if not answered and answer_at < end:
                system.liveness.note_answer("s3", answer_at)
                answered = True
            sim.run_until(end)
            observation = monitor.observe(index, end - epoch, end, 0)
            confirmed.extend(observation.failed_nodes)
            reintegrated = reintegrated or (
                "s3" in observation.reintegrated_nodes
            )
            if answered:
                break
            # Stop before the grace window elapses unanswered: past it,
            # confirmation is the *correct* outcome.
            if end + epoch - crossed_at >= grace:
                system.liveness.note_answer("s3", end)
                answered = True
        assert "s3" not in confirmed
        assert system.liveness.get("s3").crossed_at is None

    def test_reintegration_restores_exact_prior_routing(self, p):
        """suspect -> healthy leaves the fan-out wiring bit-identical."""
        detection = DetectionParams(
            timeout=0.2, suspicion_threshold=2, grace=30.0
        )
        sim = Simulator()
        system = MiddlewareSystem(
            sim, two_level(), p, WORK, detection=detection
        )
        monitor = SLOMonitor(IntervalCounter())
        monitor.attach(system)
        before = wiring(system)
        pump(system, sim, 5.0)
        # Silent partition: unreachable but structurally intact.
        members = system.partition("a1")
        assert set(members) == {"a1", "s1", "s2"}
        pump(system, sim, 10.0)
        observation = monitor.observe(0, 0.0, 10.0, 0)
        assert "a1" in observation.suspect_nodes
        assert observation.failed_nodes == ()
        healed = system.heal("a1")
        assert healed is not None
        pump(system, sim, 15.0)
        observation = monitor.observe(1, 10.0, 15.0, 0)
        assert "a1" in observation.reintegrated_nodes
        assert wiring(system) == before
        assert all(
            element.reachable
            for registry in (system.agents, system.servers)
            for element in registry.values()
        )
        # The re-integrated subtree serves again.
        done = pump(system, sim, 25.0)
        served_by = {request.selected_server for request in done}
        assert served_by & {"s1", "s2"}
        assert system.lost_conversations == 0

    def test_confirmation_is_final_and_reported_once(self, p):
        detection = DetectionParams(
            timeout=0.2, suspicion_threshold=2, grace=0.0
        )
        sim = Simulator()
        system = MiddlewareSystem(
            sim, two_level(), p, WORK, detection=detection
        )
        monitor = SLOMonitor(IntervalCounter())
        monitor.attach(system)
        pump(system, sim, 3.0)
        system.fail_silent("a1")
        pump(system, sim, 8.0)
        first = monitor.observe(0, 0.0, 8.0, 0)
        assert "a1" in first.failed_nodes
        pump(system, sim, 12.0)
        second = monitor.observe(1, 8.0, 12.0, 0)
        assert "a1" not in second.failed_nodes
        assert monitor.detection_report("a1") is not None


class TestRepeatFailureReporting:
    """A monitor outlives redeploys — its memory must not outlive nodes."""

    def test_refailure_of_reused_name_is_reported(self, p):
        """Regression: ``_failed_seen`` grew forever across attaches, so
        the second failure of a name that re-entered the deployment (a
        repair splicing a spare, a redeploy reusing the name) was
        silently swallowed.  ``attach()`` now prunes the set against
        the deployed names: fail, repair, re-fail — both reported."""
        monitor = SLOMonitor(IntervalCounter())
        sim = Simulator()
        system = MiddlewareSystem(sim, two_level(), p, WORK)
        monitor.attach(system)
        pump(system, sim, 1.0)
        system.fail_server("s1")
        first = monitor.observe(0, 0.0, 1.0, 0)
        assert "s1" in first.failed_nodes
        # A quiet window does not re-report the same failure.
        pump(system, sim, 2.0)
        assert "s1" not in monitor.observe(1, 1.0, 2.0, 0).failed_nodes
        # "Repair": a redeploy replaces the platform, and the reused
        # name is deployed — and alive — again.
        sim2 = Simulator()
        repaired = MiddlewareSystem(sim2, two_level(), p, WORK)
        monitor.attach(repaired)
        pump(repaired, sim2, 1.0)
        repaired.fail_server("s1")
        second = monitor.observe(2, 0.0, 1.0, 0)
        assert "s1" in second.failed_nodes

    def test_reconfirmation_after_repair_is_reported(self, p):
        """Detection-mode twin: the confirmed-suspicion latch is final
        for a *dead* node, but must drop when the name re-enters the
        deployment alive — else the second death is never confirmed."""
        detection = DetectionParams(
            timeout=0.2, suspicion_threshold=2, grace=0.0
        )
        sim, system, monitor = _observed_system(p, detection)
        pump(system, sim, 3.0)
        system.fail_silent("s3")
        pump(system, sim, 8.0)
        first = monitor.observe(0, 0.0, 8.0, 0)
        assert "s3" in first.failed_nodes
        assert monitor.detection_report("s3") is not None
        # Repair splices a fresh node under the reused name; attaching
        # to the repaired platform clears the stale confirmation.
        sim2 = Simulator()
        repaired = MiddlewareSystem(
            sim2, two_level(), p, WORK, detection=detection
        )
        monitor.attach(repaired)
        assert monitor.detection_report("s3") is None
        pump(repaired, sim2, 3.0)
        repaired.fail_silent("s3")
        pump(repaired, sim2, 8.0)
        second = monitor.observe(1, 0.0, 8.0, 0)
        assert "s3" in second.failed_nodes


# ------------------------------------------------------------------ #
# control loop end to end


def _loop(pool_size=12, seed=7, **kwargs):
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=11)
    defaults = dict(
        app_work=WORK,
        trace=constant(8),
        policy="reactive",
        policy_options={"repair": True},
        epochs=12,
        epoch_duration=5.0,
        think_time=0.05,
        seed=seed,
    )
    defaults.update(kwargs)
    return ControlLoop(pool, **defaults)


class TestDetectionLoop:
    def test_repair_applies_within_the_detection_bound(self):
        """Acceptance: repair within threshold x timeout + one epoch."""
        timeout, threshold, epoch = 0.5, 3, 5.0
        injected_at = 22.0
        loop = _loop(
            faults=f"crash:target=busiest-child,at={injected_at}",
            detection=DetectionParams(
                timeout=timeout, retries=0, suspicion_threshold=threshold
            ),
            # Hold spares back from scale-ups so the repair has stock.
            spare_reserve=0.25,
        )
        timeline = loop.run()
        assert timeline.detection_count == 1
        [record] = [r for r in timeline.records if r.detections]
        [detection] = record.detections
        assert isinstance(detection, DetectionRecord)
        assert detection.injected_at == injected_at
        bound = threshold * timeout + epoch
        assert detection.latency is not None
        assert detection.latency <= bound + 1.0  # excision scheduling slack
        # The repair is the confirmation epoch's own act.
        assert record.action == "repair" and record.applied
        assert timeline.lost_conversations == 0

    def test_detection_latency_lands_on_the_timeline(self):
        loop = _loop(
            faults="crash:target=busiest-child,at=22",
            detection="timeout=0.5,retries=0,threshold=3",
        )
        timeline = loop.run()
        assert timeline.detection_count == 1
        assert timeline.mean_detection_latency > 0.0
        assert "confirmed by timeout" in timeline.describe()

    def test_transient_straggler_is_reintegrated_not_evicted(self):
        """Acceptance: degrade+heal inside grace => zero evictions."""
        loop = _loop(
            policy_options={
                "repair": True, "evict_after": 2, "evict_fraction": 0.5,
            },
            faults=(
                "degrade:target=busiest-server,at=12,factor=0.02;"
                "degrade:target=busiest-server,at=21,factor=1.0"
            ),
            detection=DetectionParams(
                timeout=0.5, retries=0, suspicion_threshold=3, grace=20.0
            ),
        )
        timeline = loop.run()
        assert timeline.eviction_count == 0
        assert timeline.detection_count == 0
        assert timeline.lost_conversations == 0
        suspects = [n for r in timeline.records for n in r.suspects]
        reintegrated = [
            n for r in timeline.records for n in r.reintegrated
        ]
        if suspects:  # the straggler surfaced -> it must also recover
            assert reintegrated

    def test_persistently_degraded_server_is_evicted(self):
        loop = _loop(
            pool_size=10,
            seed=3,
            policy_options={
                "repair": True, "evict_after": 2, "evict_fraction": 0.5,
            },
            epochs=14,
            faults="degrade:target=busiest-server,at=12,factor=0.03",
            detection=DetectionParams(
                timeout=0.5, retries=0, suspicion_threshold=3
            ),
            spare_reserve=0.2,
        )
        timeline = loop.run()
        assert timeline.eviction_count == 1
        [record] = [r for r in timeline.records if r.evictions]
        [evicted] = record.evictions
        assert record.action == "evict" and record.applied
        # The evicted server left the final deployment for good.
        final = {str(node) for node in loop.final_hierarchy}
        assert evicted not in final
        assert timeline.lost_conversations == 0

    def test_spare_reserve_is_held_back_from_scale_ups(self):
        pool_size, reserve = 12, 0.25
        reserved = round(pool_size * reserve)
        greedy = _loop(pool_size=pool_size, epochs=10).run()
        held = _loop(
            pool_size=pool_size, epochs=10, spare_reserve=reserve
        ).run()
        cap = pool_size - reserved
        assert max(r.deployed_nodes for r in held.records) <= cap
        assert (
            max(r.deployed_nodes for r in greedy.records)
            > max(r.deployed_nodes for r in held.records)
        )

    def test_reserve_spec_key_overrides_the_argument(self):
        loop = _loop(detection="timeout=0.5,reserve=0.25", spare_reserve=0.0)
        assert loop.spare_reserve == 0.25

    def test_bad_reserve_raises(self):
        with pytest.raises(ControlError):
            _loop(spare_reserve=1.0)

    def test_oracle_runs_record_no_detections(self):
        timeline = _loop(
            faults="crash:target=busiest-child,at=22",
        ).run()
        assert timeline.detection_count == 0
        assert all(r.detections == () for r in timeline.records)
        assert all(r.suspects == () for r in timeline.records)


# ------------------------------------------------------------------ #
# determinism


class TestDetectionDeterminism:
    def test_detection_runs_are_bit_identical_per_seed(self):
        spec = dict(
            faults="crash:target=busiest-child,at=22",
            detection="timeout=0.5,retries=1,threshold=3,reserve=0.2",
        )
        assert _loop(**spec).run() == _loop(**spec).run()

    def test_eviction_runs_are_bit_identical_per_seed(self):
        spec = dict(
            pool_size=10,
            seed=3,
            policy_options={
                "repair": True, "evict_after": 2, "evict_fraction": 0.5,
            },
            epochs=14,
            faults="degrade:target=busiest-server,at=12,factor=0.03",
            detection="timeout=0.5,retries=0,threshold=3",
        )
        assert _loop(**spec).run() == _loop(**spec).run()

    def test_sweep_matches_serial_across_process_pools(self):
        session = PlanningSession()
        pool = NodePool.uniform_random(10, low=80, high=400, seed=11)
        kwargs = dict(
            traces=("constant:level=8",),
            policies=("reactive",),
            seeds=(3, 7),
            policy_options={"reactive": {"repair": True}},
            epochs=8,
            think_time=0.05,
            faults="crash:target=busiest-child,at=22",
            detection="timeout=0.5,retries=0,threshold=3,reserve=0.2",
        )
        parallel = session.control_sweep(
            pool, WORK, max_workers=2, **kwargs
        )
        serial = session.control_sweep(
            pool, WORK, parallel=False, **kwargs
        )
        assert [c.timeline for c in parallel] == [
            c.timeline for c in serial
        ]
        assert any(c.timeline.detection_count for c in serial)

    def test_sweep_validates_detection_spec_eagerly(self):
        session = PlanningSession()
        pool = NodePool.uniform_random(6, low=80, high=400, seed=11)
        with pytest.raises(DetectionError):
            session.control_sweep(
                pool, WORK,
                traces=("constant:level=4",),
                detection="timeout=nope",
            )


# ------------------------------------------------------------------ #
# storm seeding contract


class TestStormSeeding:
    def test_composed_storms_draw_disjoint_streams(self):
        one = crash_storm(3, 0.0, 100.0, seed=7, target="s1")
        two = crash_storm(3, 0.0, 100.0, seed=7, target="s2")
        assert not {e.at for e in one} & {e.at for e in two}
        assert from_spec((one + two).spec) == one + two

    def test_count_growth_never_reshuffles_draws(self):
        narrow = {e.at for e in crash_storm(3, 0.0, 100.0, seed=7)}
        wide = {e.at for e in crash_storm(6, 0.0, 100.0, seed=7)}
        assert narrow <= wide

    def test_subtree_storm_shares_one_stream_and_round_trips(self):
        storm = subtree_storm(("a1", "a2", "a3"), 4, 20.0, 80.0, seed=3)
        assert storm == subtree_storm("a1|a2|a3", 4, 20.0, 80.0, seed=3)
        assert from_spec(storm.spec) == storm
        parsed = from_spec(
            "subtree-storm:targets=a1|a2|a3,count=4,start=20,end=80,seed=3"
        )
        assert parsed == storm
        assert {e.kind for e in storm} == {"crash"}
        assert {e.target for e in storm} <= {"a1", "a2", "a3"}

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_storm_spec_round_trip_is_exact(self, seed):
        independent = crash_storm(3, 10.0, 90.0, seed=seed, target="x")
        correlated = subtree_storm("a|b", 3, 10.0, 90.0, seed=seed)
        combined = independent + correlated
        assert from_spec(combined.spec) == combined


# ------------------------------------------------------------------ #
# policy surface


class TestEvictDecision:
    def test_evict_requires_targets(self):
        with pytest.raises(ControlError):
            ControlDecision("evict", "no target")
        decision = ControlDecision("evict", "drain s1", targets=("s1",))
        assert decision.targets == ("s1",)

    def test_evict_options_validate(self):
        with pytest.raises(ControlError):
            _loop(policy_options={"evict_after": -1})
        with pytest.raises(ControlError):
            _loop(policy_options={"evict_after": 2, "evict_fraction": 1.5})
