"""Exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchyContract:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_value_error_family(self):
        # Parameter and structure problems are ValueErrors so generic
        # callers can treat them as bad input.
        assert issubclass(errors.ParameterError, ValueError)
        assert issubclass(errors.HierarchyError, ValueError)

    def test_runtime_error_family(self):
        for exc in (
            errors.PlanningError,
            errors.DeploymentError,
            errors.SimulationError,
            errors.CalibrationError,
        ):
            assert issubclass(exc, RuntimeError)

    def test_single_catch_covers_library(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")

    def test_api_surface_matches_all(self):
        public = {
            name
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), Exception)
        }
        assert public == set(errors.__all__)
