"""Fault injection + self-healing: schedules, surgery, control plane.

Locks down the failure layer's contracts:

* schedules are pure data — seeded, composable with ``+``, exactly
  round-trippable through ``from_spec`` (property-tested);
* middleware surgery — crashes dead-letter and resubmit (never lose)
  in-flight conversations, disjoint-subtree injections commute, and a
  partition followed by a heal restores the exact pre-fault fan-out;
* the control plane — faulted runs stay bit-deterministic per seed
  (including across ``control_sweep`` process pools), repair decisions
  splice spares through the migration machinery, and the Black Friday
  crash scenario recovers >= 90 % of the no-fault throughput with zero
  lost conversations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NodePool, dgemm_mflop
from repro.api import PlanningSession
from repro.control.loop import ControlLoop
from repro.control.traces import from_spec as trace_spec
from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.errors import ControlError, DeploymentError, FaultError
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    crash,
    crash_storm,
    degrade,
    from_spec,
    heal,
    partition,
)
from repro.middleware.system import MiddlewareSystem
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource

WORK = dgemm_mflop(200)


@pytest.fixture
def p() -> ModelParams:
    return ModelParams()


def star(n_servers: int, power: float = 265.0) -> Hierarchy:
    h = Hierarchy()
    h.set_root("agent", power)
    for i in range(n_servers):
        h.add_server(f"s{i}", power, "agent")
    return h


def two_regions() -> Hierarchy:
    """Root with two disjoint agent subtrees plus one direct server."""
    h = Hierarchy()
    h.set_root("root", 265.0)
    h.add_agent("mid-a", 265.0, "root")
    h.add_server("a0", 265.0, "mid-a")
    h.add_server("a1", 265.0, "mid-a")
    h.add_agent("mid-b", 265.0, "root")
    h.add_server("b0", 265.0, "mid-b")
    h.add_server("b1", 265.0, "mid-b")
    h.add_server("s0", 265.0, "root")
    return h


def wiring(system: MiddlewareSystem) -> dict[str, tuple[str, ...]]:
    """The live fan-out: agent name -> ordered child names."""
    return {
        name: tuple(child.name for child in agent.children)
        for name, agent in sorted(system.agents.items())
    }


# --------------------------------------------------------------------- #
# schedules are pure data


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(FaultError):
            FaultEvent(1.0, "meteor", "s0")
        with pytest.raises(FaultError):
            FaultEvent(-1.0, "crash", "s0")
        with pytest.raises(FaultError):
            FaultEvent(1.0, "crash", "   ")
        with pytest.raises(FaultError):
            FaultEvent(1.0, "crash", "s0", factor=0.5)
        with pytest.raises(FaultError):
            FaultEvent(1.0, "degrade", "s0", factor=0.0)

    def test_equality_and_hash(self):
        a = FaultEvent(3.0, "degrade", "s1", factor=0.25)
        b = FaultEvent(3.0, "degrade", "s1", factor=0.25)
        c = FaultEvent(3.0, "degrade", "s1", factor=0.5)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestScheduleComposition:
    def test_add_interleaves_chronologically(self):
        merged = crash("s1", 40.0) + degrade("s0", 10.0, 0.5)
        assert [e.at for e in merged] == [10.0, 40.0]
        assert [e.kind for e in merged] == ["degrade", "crash"]

    def test_same_time_events_keep_composition_order(self):
        merged = partition("mid-a", 5.0) + crash("s1", 5.0)
        assert [e.kind for e in merged] == ["partition", "crash"]
        flipped = crash("s1", 5.0) + partition("mid-a", 5.0)
        assert [e.kind for e in flipped] == ["crash", "partition"]

    def test_equality_hash_bool_len(self):
        a = crash("s1", 4.0) + heal("mid", 9.0)
        b = heal("mid", 9.0) + crash("s1", 4.0)
        assert a == b and hash(a) == hash(b)
        assert len(a) == 2 and bool(a)
        assert not FaultSchedule()

    def test_storm_is_seeded_and_materialized(self):
        one = crash_storm(4, 20.0, 80.0, seed=7)
        two = crash_storm(4, 20.0, 80.0, seed=7)
        other = crash_storm(4, 20.0, 80.0, seed=8)
        assert one == two
        assert one != other
        assert all(20.0 <= e.at < 80.0 for e in one)
        assert [e.at for e in one] == sorted(e.at for e in one)


class TestSpecRoundTrip:
    def test_storm_round_trips_exactly(self):
        storm = crash_storm(3, 20.0, 80.0, seed=7)
        assert from_spec(storm.spec) == storm

    def test_from_spec_storm_matches_constructor(self):
        parsed = from_spec("storm:count=3,start=20,end=80,seed=7")
        assert parsed == crash_storm(3, 20.0, 80.0, seed=7)

    def test_dashed_keys_accepted(self):
        assert from_spec("crash:target=busiest-child,at=45") == crash(
            "busiest-child", 45.0
        )

    def test_errors(self):
        for bad in (
            "",
            " ; ",
            "meteor:target=s0,at=1",
            "crash:target=s0,at=1,factor=2",
            "crash:target=s0,at=soon",
            "crash:garbage",
            "crash:at=1",  # missing target
        ):
            with pytest.raises(FaultError):
                from_spec(bad)

    events = st.lists(
        st.one_of(
            st.builds(
                FaultEvent,
                st.floats(min_value=0.0, max_value=1e4),
                st.sampled_from(("crash", "partition", "heal")),
                st.sampled_from(("s0", "mid-a", "busiest-child")),
            ),
            st.builds(
                FaultEvent,
                st.floats(min_value=0.0, max_value=1e4),
                st.just("degrade"),
                st.sampled_from(("s0", "mid-a")),
                factor=st.floats(min_value=1e-3, max_value=16.0),
            ),
        ),
        min_size=1,
        max_size=12,
    )

    @given(events)
    @settings(max_examples=60, deadline=None)
    def test_any_schedule_round_trips_exactly(self, events):
        schedule = FaultSchedule(events)
        assert from_spec(schedule.spec) == schedule
        # Composition of parsed halves equals the parsed whole.
        first = FaultSchedule(events[: len(events) // 2 + 1])
        rest = FaultSchedule(events[len(events) // 2 + 1 :])
        recombined = from_spec(first.spec) + (
            from_spec(rest.spec) if rest else FaultSchedule()
        )
        assert recombined == schedule


# --------------------------------------------------------------------- #
# middleware surgery


class TestCrashSurgery:
    def test_crash_dead_letters_and_resubmits_in_flight(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(3), p, app_work=24.0, seed=1)
        done = []
        for _ in range(12):
            system.submit("client", on_complete=done.append)
        # Let scheduling finish and service begin, then yank a server
        # that is mid-conversation.
        sim.run_until(0.05)
        assert system.total_completed() < 12
        members, dead = system.fail_server("s0")
        assert members == ("s0",)
        assert dead >= 1
        sim.run()
        # Every conversation still completes, none on the dead server.
        assert len(done) == 12
        assert system.lost_conversations == 0
        assert system.dead_letters == dead
        assert all(r.selected_server in ("s1", "s2") for r in done[-dead:])
        assert "s0" not in system.servers
        assert "s0" in system.failed_nodes
        assert "s0" not in {str(n) for n in system.hierarchy}

    def test_subtree_crash_prunes_whole_region(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, two_regions(), p, app_work=8.0, seed=1)
        members, _ = system.fail_subtree("mid-a")
        assert members == ("a0", "a1", "mid-a")
        survivors = {str(n) for n in system.hierarchy}
        assert survivors == {"root", "mid-b", "b0", "b1", "s0"}
        done = []
        system.submit("client", on_complete=done.append)
        sim.run()
        assert len(done) == 1

    def test_root_cannot_crash(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(2), p, app_work=1.0, seed=1)
        with pytest.raises(DeploymentError):
            system.fail_subtree("agent")

    @pytest.mark.parametrize("n_requests,when", [(0, 0.0), (8, 0.04), (20, 0.2)])
    def test_disjoint_subtree_injection_order_is_immaterial(
        self, p, n_requests, when
    ):
        """Crashing two disjoint subtrees commutes, whatever is in flight."""

        def run(order):
            sim = Simulator()
            system = MiddlewareSystem(
                sim, two_regions(), p, app_work=24.0, seed=3
            )
            done = []
            for _ in range(n_requests):
                system.submit("client", on_complete=done.append)
            if when > 0.0:
                sim.run_until(when)
            for target in order:
                system.fail_subtree(target)
            state = (
                tuple(sorted(str(n) for n in system.hierarchy)),
                tuple(sorted(system.agents)),
                tuple(sorted(system.servers)),
                tuple(sorted(system.failed_nodes)),
                system.dead_letters,
            )
            sim.run()
            return state, len(done), system.lost_conversations

        forward = run(("mid-a", "mid-b"))
        backward = run(("mid-b", "mid-a"))
        assert forward[0] == backward[0]
        assert forward[1] == backward[1] == n_requests
        assert forward[2] == backward[2] == 0


class TestPartitionAndHeal:
    def test_partition_heal_restores_exact_prefault_tree(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, two_regions(), p, app_work=8.0, seed=1)
        before_wiring = wiring(system)
        before_tree = system.hierarchy
        members = system.partition("mid-a")
        assert members == ("a0", "a1", "mid-a")
        assert "mid-a" not in wiring(system)["root"]
        # Dark subtree serves nothing; the rest keeps working.
        done = []
        for _ in range(6):
            system.submit("client", on_complete=done.append)
        sim.run()
        assert len(done) == 6
        assert all(r.selected_server in ("b0", "b1", "s0") for r in done)
        healed = system.heal("mid-a")
        assert healed == ("a0", "a1", "mid-a")
        # No repair ran, so the exact pre-fault state is restored.
        assert wiring(system) == before_wiring
        assert system.hierarchy is before_tree
        assert system.partitioned_subtrees == {}
        done.clear()
        for _ in range(8):
            system.submit("client", on_complete=done.append)
        sim.run()
        assert {r.selected_server for r in done} & {"a0", "a1"}

    def test_double_partition_and_overlap_are_errors(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, two_regions(), p, app_work=1.0, seed=1)
        system.partition("mid-a")
        with pytest.raises(DeploymentError):
            system.partition("mid-a")
        with pytest.raises(DeploymentError):
            system.partition("a0")  # already dark under mid-a

    def test_heal_without_partition_is_none(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(2), p, app_work=1.0, seed=1)
        assert system.heal("s0") is None


class TestDegrade:
    def test_degraded_node_serves_slower_then_recovers(self, p):
        def latency(factor):
            sim = Simulator()
            system = MiddlewareSystem(sim, star(1), p, app_work=64.0, seed=1)
            if factor is not None:
                system.degrade_node("s0", factor)
            done = []
            system.submit("client", on_complete=done.append)
            sim.run()
            return done[0].total_latency

        nominal = latency(None)
        slowed = latency(0.25)
        assert slowed > nominal
        sim = Simulator()
        system = MiddlewareSystem(sim, star(1), p, app_work=1.0, seed=1)
        system.degrade_node("s0", 0.5)
        assert system.degraded == {"s0": 0.5}
        system.degrade_node("s0", 1.0)
        assert system.degraded == {}

    def test_mid_task_rescale_preserves_work(self):
        sim = Simulator()
        resource = SerialResource(sim, "r")
        finished = []
        resource.submit(10.0, "compute", lambda: finished.append(sim.now))
        sim.run_until(4.0)
        resource.set_rate(0.5)  # 6 nominal seconds left -> 12 wall
        sim.run()
        assert finished == [16.0]

    def test_halt_drops_queue_and_blackholes(self):
        sim = Simulator()
        resource = SerialResource(sim, "r")
        finished = []
        resource.submit(5.0, "compute", lambda: finished.append("a"))
        resource.submit(5.0, "compute", lambda: finished.append("b"))
        sim.run_until(1.0)
        dropped = resource.halt()
        assert dropped == 2  # the running task and the queued one
        resource.submit(1.0, "compute", lambda: finished.append("late"))
        sim.run()
        assert finished == []
        assert resource.is_halted
        with pytest.raises(Exception):
            resource.set_rate(2.0)


# --------------------------------------------------------------------- #
# the injector


class TestInjector:
    def test_due_pops_in_order_once(self):
        injector = FaultInjector(crash("s0", 5.0) + crash("s1", 15.0))
        assert [e.at for e in injector.due(10.0)] == [5.0]
        assert injector.pending == 1
        assert injector.due(10.0) == []
        assert [e.at for e in injector.due(20.0)] == [15.0]

    def test_busiest_server_resolution_is_deterministic(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(3), p, app_work=16.0, seed=1)
        injector = FaultInjector(crash("busiest-server", 1.0))
        done = []
        for _ in range(9):
            system.submit("client", on_complete=done.append)
        sim.run_until(1.0)
        first = injector.resolve("busiest-server", system)
        assert first in system.servers
        busy = {
            name: system.servers[name].resource.busy_seconds()
            for name in system.servers
        }
        assert busy[first] == max(busy.values())

    def test_unresolved_target_is_skipped_not_fatal(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(2), p, app_work=1.0, seed=1)
        record = FaultInjector(FaultSchedule()).apply(
            FaultEvent(0.0, "crash", "ghost"), system
        )
        assert not record.applied
        assert record.nodes == ()

    def test_root_fault_is_a_schedule_bug(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(2), p, app_work=1.0, seed=1)
        injector = FaultInjector(FaultSchedule())
        for kind in ("crash", "partition"):
            with pytest.raises(FaultError):
                injector.apply(FaultEvent(0.0, kind, "agent"), system)


# --------------------------------------------------------------------- #
# the control plane


def faulted_loop(**overrides) -> ControlLoop:
    defaults = dict(
        pool=NodePool.uniform_random(10, low=80, high=400, seed=7),
        app_work=WORK,
        trace=trace_spec("black_friday"),
        policy="reactive",
        policy_options={"hysteresis": 1, "cooldown": 1},
        epochs=12,
        epoch_duration=4.0,
        initial_fraction=0.4,
        seed=3,
        faults="crash:target=busiest-child,at=18",
    )
    defaults.update(overrides)
    return ControlLoop(**defaults)


class TestControlLoopFaults:
    def test_faults_argument_validation(self):
        with pytest.raises(FaultError):
            faulted_loop(faults="meteor:at=3")
        with pytest.raises(ControlError):
            faulted_loop(faults=42)

    @pytest.mark.parametrize("migration", ["live", "concurrent", "restart"])
    def test_same_seed_is_bit_identical_under_faults(self, migration):
        first = faulted_loop(migration=migration).run()
        second = faulted_loop(migration=migration).run()
        assert first == second
        assert first.records == second.records
        assert first.fault_count == 1
        crashed = [r for r in first.records if r.faults]
        assert len(crashed) == 1
        assert crashed[0].faults[0].kind == "crash"
        assert crashed[0].faults[0].applied

    def test_crash_never_loses_conversations(self):
        timeline = faulted_loop().run()
        assert timeline.lost_conversations == 0
        assert timeline.dead_letters >= 0
        assert "faults injected" in timeline.describe()

    def test_monitor_reports_failure_exactly_once(self):
        timeline = faulted_loop().run()
        failed = [
            name for r in timeline.records for f in r.faults for name in f.nodes
        ]
        repairs = [r for r in timeline.records if r.action == "repair"]
        assert len(repairs) == 1  # one decision per fault, not a retry storm
        assert failed[0] in repairs[0].reason

    def test_crashed_nodes_never_come_back(self):
        timeline = faulted_loop(epochs=20).run()
        dead = {
            name for r in timeline.records for f in r.faults for name in f.nodes
        }
        loop = faulted_loop(epochs=20)
        loop.run()
        final = {str(n) for n in loop.final_hierarchy}
        assert not dead & final

    def test_degrade_and_heal_specs_run_end_to_end(self):
        spec = (
            "degrade:target=busiest-server,at=10,factor=0.25;"
            "partition:target=busiest-child,at=20;"
            "heal:target=busiest-child,at=30"
        )
        timeline = faulted_loop(
            faults=spec, policy="hold", policy_options=None
        ).run()
        kinds = [f.kind for r in timeline.records for f in r.faults]
        assert kinds == ["degrade", "partition", "heal"]
        assert timeline.fault_count == 3
        assert timeline.lost_conversations == 0

    def test_sweep_serial_matches_process_pool_under_faults(self):
        session = PlanningSession()
        pool = NodePool.uniform_random(10, low=80, high=400, seed=7)
        kwargs = dict(
            traces=("black_friday",),
            policies=("reactive",),
            seeds=(0, 1),
            policy_options={"reactive": {"hysteresis": 1, "cooldown": 1}},
            epochs=8,
            epoch_duration=3.0,
            initial_fraction=0.4,
            faults="crash:target=busiest-child,at=10",
        )
        serial = session.control_sweep(
            pool, WORK, parallel=False, **kwargs
        )
        pooled = session.control_sweep(
            pool, WORK, parallel=True, max_workers=2, **kwargs
        )
        for a, b in zip(serial, pooled):
            assert a.timeline == b.timeline
        assert all(c.timeline.fault_count == 1 for c in serial)

    def test_sweep_validates_fault_spec_eagerly(self):
        session = PlanningSession()
        pool = NodePool.uniform_random(6, low=80, high=400, seed=7)
        with pytest.raises(FaultError):
            session.control_sweep(
                pool, WORK,
                traces=("constant:level=4",),
                policies=("hold",),
                seeds=(0, 1),
                faults="crash:at=nonsense",
            )


class TestRepairPath:
    def test_repair_splices_spares_over_the_hole(self):
        # Crash while spares remain: the repair decision must apply a
        # redeploy that brings replacement nodes in.
        pool = NodePool.uniform_random(16, low=80, high=400, seed=7)
        timeline = faulted_loop(
            pool=pool, epochs=14, faults="crash:target=busiest-child,at=18"
        ).run()
        repairs = [r for r in timeline.records if r.action == "repair"]
        assert repairs and any(r.applied for r in repairs)
        applied = next(r for r in repairs if r.applied)
        assert "splicing in spares" in applied.reason
        # The epoch after the repair deploys more nodes than the crash
        # left behind.
        after = timeline.records[applied.index + 1]
        assert after.deployed_nodes > applied.deployed_nodes

    def test_repair_can_be_disabled(self):
        timeline = faulted_loop(
            policy_options={"hysteresis": 1, "cooldown": 1, "repair": False},
        ).run()
        assert all(r.action != "repair" for r in timeline.records)
        assert timeline.lost_conversations == 0


class TestFaultRecoveryAcceptance:
    """The examples/autoscaling.py act-three numbers, kept honest."""

    @staticmethod
    def _example():
        import sys
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent / "examples"
        sys.path.insert(0, str(examples))
        try:
            import autoscaling
        finally:
            sys.path.remove(str(examples))
        return autoscaling

    def test_crash_recovers_ninety_percent_with_zero_lost(self):
        runs = self._example().run_fault_recovery(verbose=False)
        baseline, faulted = runs["baseline"], runs["faulted"]
        assert faulted.lost_conversations == 0
        assert faulted.fault_count == 1
        assert faulted.total_served >= 0.9 * baseline.total_served
        repairs = [
            r for r in faulted.records if r.action == "repair" and r.applied
        ]
        assert repairs
