"""Fluid/hybrid population battery.

Covers the three contracts the hybrid model ships with:

* **integration** — :class:`repro.sim.fluid.FluidPopulation` integrates
  ``min(level * unit_rate, capacity)`` exactly for step levels, and its
  floor-carry attribution never drops or double-counts a completion no
  matter how the run is windowed;
* **equivalence and agreement** — a :class:`HybridTrace` whose cohort
  covers the peak level *is* the all-discrete run (exact equality), and
  at small scale a genuinely split hybrid run's served-rate curve stays
  within tolerance of the all-discrete simulation across seeds, traces
  and policies (hypothesis);
* **determinism** — same-seed hybrid timelines are bit-identical across
  kernel backends (NumPy vs pure Python), with tracing on or off, and
  between serial and process-pool ``control_sweep`` execution;
* **merging** — :func:`repro.control.monitor.merge_fluid` folds the
  fluid window into the cohort observation over the *union* of both
  server sets, so a server spliced in mid-epoch keeps its fluid share.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import render_timeline
from repro.api import PlanningSession
from repro.control import ControlLoop, HybridTrace, from_spec, hybrid
from repro.control.monitor import WindowObservation, merge_fluid
from repro.core import kernels
from repro.errors import ControlError, SimulationError
from repro.platforms.pool import NodePool
from repro.sim.fluid import FluidPopulation
from repro.units import dgemm_mflop

WORK = dgemm_mflop(200)
POOL = NodePool.uniform_random(8, low=80, high=400, seed=7)
LOOP_KW = dict(
    epochs=6,
    epoch_duration=2.0,
    initial_fraction=0.5,
    seed=0,
)


def run_loop(trace, policy="reactive", **overrides):
    kwargs = {**LOOP_KW, **overrides}
    policy_options = (
        {"hysteresis": 1, "cooldown": 1} if policy == "reactive" else None
    )
    loop = ControlLoop(
        POOL, WORK, trace, policy=policy,
        policy_options=policy_options, **kwargs,
    )
    return loop.run()


# ---------------------------------------------------------------------- #
# integration


class TestFluidPopulation:
    def test_constant_level_integrates_exactly(self):
        fluid = FluidPopulation()
        window = fluid.advance(0.0, 4.0, lambda t: 10.0, 0.5, 100.0)
        assert window.served_mass == pytest.approx(20.0)
        assert window.served == 20
        assert window.offered_mean == pytest.approx(10.0)
        assert window.served_rate == pytest.approx(5.0)
        assert window.demand_rate == pytest.approx(5.0)
        assert window.utilization == 1.0

    def test_capacity_caps_served_not_demand(self):
        fluid = FluidPopulation()
        window = fluid.advance(0.0, 2.0, lambda t: 100.0, 1.0, 30.0)
        assert window.served_rate == pytest.approx(30.0)
        assert window.demand_rate == pytest.approx(100.0)
        assert window.utilization == pytest.approx(0.3)

    def test_floor_carry_conserves_mass_across_windows(self):
        # 0.3 completions per window: integers must trickle out as the
        # cumulative mass crosses whole numbers, never drift.
        fluid = FluidPopulation(substeps=4)
        served = [
            fluid.advance(i * 1.0, (i + 1) * 1.0, lambda t: 0.6, 0.5, 10.0)
            .served
            for i in range(10)
        ]
        assert sum(served) == math.floor(fluid.total_mass)
        assert fluid.total_served == sum(served)
        assert fluid.total_mass == pytest.approx(3.0)

    def test_time_varying_level_uses_substeps(self):
        # Level steps from 0 to 8 halfway through the window: left-endpoint
        # sampling at 8 substeps integrates exactly half the full mass.
        fluid = FluidPopulation(substeps=8)
        window = fluid.advance(
            0.0, 4.0, lambda t: 8.0 if t >= 2.0 else 0.0, 1.0, 100.0
        )
        assert window.served_mass == pytest.approx(16.0)
        assert window.offered_mean == pytest.approx(4.0)

    def test_negative_inputs_clamp_to_zero(self):
        fluid = FluidPopulation()
        window = fluid.advance(0.0, 1.0, lambda t: -5.0, -1.0, -2.0)
        assert window.served_mass == 0.0
        assert window.served == 0

    def test_validation(self):
        with pytest.raises(SimulationError, match="substeps"):
            FluidPopulation(substeps=0)
        with pytest.raises(SimulationError, match="bad fluid window"):
            FluidPopulation().advance(2.0, 2.0, lambda t: 1.0, 1.0, 1.0)


@pytest.mark.skipif(not kernels.HAVE_NUMPY, reason="numpy not installed")
class TestBackendBitIdentity:
    def test_fluid_window_bit_identical_across_backends(self, monkeypatch):
        # Awkward irrational-ish inputs: both backends must produce the
        # exact same IEEE-754 result, not merely a close one.
        def level(t):
            return 17.3 * math.sin(t / 7.1) ** 2 + 0.123456789

        def advance():
            fluid = FluidPopulation(substeps=16)
            return [
                fluid.advance(
                    i * 1.7, (i + 1) * 1.7, level, 0.377, 9.23
                )
                for i in range(6)
            ]

        monkeypatch.setattr(kernels, "_USE_NUMPY", True)
        with_numpy = advance()
        monkeypatch.setattr(kernels, "_USE_NUMPY", False)
        pure = advance()
        assert with_numpy == pure  # dataclass equality: bitwise floats

    def test_hybrid_timeline_bit_identical_across_backends(
        self, monkeypatch
    ):
        spec = "flash:base=3,peak=12,at=4,rise=2,fall=4,population=100,cohort=4"
        monkeypatch.setattr(kernels, "_USE_NUMPY", True)
        with_numpy = run_loop(from_spec(spec))
        monkeypatch.setattr(kernels, "_USE_NUMPY", False)
        pure = run_loop(from_spec(spec))
        assert with_numpy == pure


# ---------------------------------------------------------------------- #
# trace grammar


class TestHybridTrace:
    def test_partition_recombines_to_total(self):
        trace = hybrid(
            from_spec("diurnal:base=4,peak=40,period=32"),
            population=7.5, cohort=20,
        )
        for t in [0.0, 3.7, 8.0, 15.9, 31.0, 64.2]:
            assert (
                trace.cohort_level(t) + trace.fluid_level(t)
                == trace.level(t)
            )
            assert trace.cohort_level(t) <= 20
            assert trace.fluid_level(t) >= 0.0

    def test_population_multiplies_base(self):
        base = from_spec("constant:level=6")
        trace = hybrid(from_spec("constant:level=6"), population=1000.0)
        assert trace.level(0.0) == 1000 * base.level(0.0)

    def test_is_a_trace(self):
        trace = hybrid(from_spec("constant:level=5"), cohort=2)
        assert isinstance(trace, HybridTrace)
        assert trace.peak(0.0, 10.0) == 5  # Trace API works unchanged

    def test_validation(self):
        base = from_spec("constant:level=5")
        with pytest.raises(ControlError, match="population"):
            hybrid(base, population=0.0)
        with pytest.raises(ControlError, match="cohort"):
            hybrid(base, cohort=0)
        with pytest.raises(ControlError, match="must be a Trace"):
            HybridTrace("constant:level=5")

    def test_from_spec_round_trips_exactly(self):
        spec = "diurnal:base=4,peak=10,period=160,population=100000,cohort=24"
        trace = from_spec(spec)
        assert isinstance(trace, HybridTrace)
        assert trace.name == spec
        rebuilt = from_spec(trace.name)
        assert rebuilt.name == spec
        assert rebuilt.population == trace.population == 100000.0
        assert rebuilt.cohort == trace.cohort == 24
        for t in (0.0, 13.0, 80.0, 159.0):
            assert rebuilt.level(t) == trace.level(t)
            assert rebuilt.fluid_level(t) == trace.fluid_level(t)

    def test_spec_keys_are_grammar_wide(self):
        # population/cohort ride along on every keyed spec form.
        piecewise = from_spec(
            "piecewise:steps=0/4|10/40,population=100,cohort=8"
        )
        assert isinstance(piecewise, HybridTrace)
        assert piecewise.level(10.0) == 4000
        assert piecewise.cohort == 8
        fixture = from_spec(
            "fixture:name=black_friday,scale=1.5,population=10"
        )
        assert isinstance(fixture, HybridTrace)
        assert fixture.cohort == 16  # default cohort
        assert from_spec(fixture.name).level(20.0) == fixture.level(20.0)
        cohort_only = from_spec("constant:level=30,cohort=4")
        assert isinstance(cohort_only, HybridTrace)
        assert cohort_only.population == 1.0
        assert cohort_only.cohort_level(0.0) == 4
        assert cohort_only.fluid_level(0.0) == 26.0

    def test_spec_errors(self):
        with pytest.raises(ControlError, match="population"):
            from_spec("constant:level=5,population=0")
        with pytest.raises(ControlError, match="population"):
            from_spec("constant:level=5,population=lots")
        with pytest.raises(ControlError, match="cohort"):
            from_spec("constant:level=5,cohort=0")
        with pytest.raises(ControlError, match="cohort"):
            from_spec("constant:level=5,cohort=2.5")

    def test_plain_specs_stay_plain(self):
        assert not isinstance(from_spec("constant:level=5"), HybridTrace)
        assert not isinstance(from_spec("wikipedia_flash"), HybridTrace)


# ---------------------------------------------------------------------- #
# equivalence and agreement


def structural(timeline):
    """The policy-visible skeleton of a timeline, split bookkeeping aside."""
    return [
        (r.served, r.served_rate, r.offered, r.action, r.applied,
         r.capacity, r.deployed_nodes, r.busiest_utilization)
        for r in timeline.records
    ]


class TestHybridEquivalence:
    def test_cohort_covering_peak_is_the_discrete_run(self):
        spec = "flash:base=3,peak=10,at=4,rise=2,fall=4"
        discrete = run_loop(from_spec(spec))
        covered = run_loop(hybrid(from_spec(spec), cohort=64))
        assert structural(covered) == structural(discrete)
        assert covered.total_served == discrete.total_served
        assert all(r.fluid_clients == 0.0 for r in covered.records)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        spec=st.sampled_from(
            [
                "flash:base=3,peak=12,at=4,rise=2,fall=4",
                "diurnal:base=4,peak=12,period=24",
                "constant:level=10",
            ]
        ),
        policy=st.sampled_from(["reactive", "hold"]),
    )
    def test_fluid_agrees_with_discrete_at_small_scale(
        self, seed, spec, policy
    ):
        discrete = run_loop(from_spec(spec), policy=policy, seed=seed)
        split = run_loop(
            from_spec(spec + ",cohort=4"), policy=policy, seed=seed
        )
        reference = discrete.mean_served_rate
        assert split.mean_served_rate == pytest.approx(
            reference, rel=0.35, abs=2.0
        )
        # The hybrid run must actually have carried fluid mass.
        assert any(r.fluid_clients > 0.0 for r in split.records)


# ---------------------------------------------------------------------- #
# determinism


class TestHybridDeterminism:
    SPEC = "diurnal:base=4,peak=12,period=24,population=1000,cohort=4"

    def test_same_seed_same_timeline(self):
        assert run_loop(from_spec(self.SPEC)) == run_loop(
            from_spec(self.SPEC)
        )

    def test_tracing_does_not_change_the_timeline(self):
        untraced = run_loop(from_spec(self.SPEC))
        traced = run_loop(from_spec(self.SPEC), obs=True)
        assert traced == untraced

    def test_sweep_serial_matches_process_pool(self):
        session = PlanningSession()
        grid = dict(
            traces=(self.SPEC,),
            policies=("reactive",),
            seeds=(0, 1),
            policy_options={"reactive": {"hysteresis": 1, "cooldown": 1}},
            epochs=5,
            epoch_duration=2.0,
        )
        serial = session.control_sweep(
            POOL, WORK, parallel=False, **grid
        )
        pooled = session.control_sweep(
            POOL, WORK, parallel=True, max_workers=2, **grid
        )
        assert [c.timeline for c in serial] == [c.timeline for c in pooled]

    def test_metrics_carry_the_fluid_split(self):
        timeline = run_loop(from_spec(self.SPEC))
        last = timeline.records[-1]
        assert last.fluid_clients > 0.0
        assert last.cohort_clients == 4
        assert last.metrics.value("fluid_clients") == last.fluid_clients
        assert last.metrics.value("cohort_clients") == 4
        totals = [
            r.metrics.value("fluid_served_total") for r in timeline.records
        ]
        assert totals == sorted(totals)  # cumulative counter
        assert totals[-1] > 0
        # All-discrete runs keep the keys (uniform snapshots), zeroed.
        plain = run_loop(from_spec("constant:level=6"), epochs=2)
        assert plain.records[-1].metrics.value("fluid_clients") == 0.0
        assert plain.records[-1].metrics.value("fluid_served_total") == 0

    def test_render_timeline_population_column(self):
        split = render_timeline(run_loop(from_spec(self.SPEC), epochs=2))
        assert "pop(c+f)" in split
        assert "4+" in split
        plain = render_timeline(
            run_loop(from_spec("constant:level=6"), epochs=2)
        )
        assert "pop(c+f)" in plain


# ---------------------------------------------------------------------- #
# merging


class TestMergeFluid:
    def observation(self, server_rates):
        return WindowObservation(
            index=0,
            start=0.0,
            end=2.0,
            offered=4,
            served=10,
            served_rate=5.0,
            agent_utilization=0.5,
            server_utilization=0.4,
            busiest_node="s1",
            busiest_utilization=0.5,
            queue_depth=0,
            server_rates=server_rates,
        )

    def test_merge_covers_union_of_server_sets(self):
        """Regression: a server that joined the deployment between the
        observe snapshot and ``assign_fluid_rates`` (mid-epoch repair
        splice) appears in the fluid allocation but not in the
        observation; its share must survive the merge instead of being
        silently dropped."""
        observation = self.observation((("s1", 3.0), ("s2", 2.0)))
        window = SimpleNamespace(
            served_rate=4.0, demand_rate=4.0, served=8, offered_mean=100.0
        )
        allocation = (("s1", 1.5), ("s3", 2.5))  # s3: spliced mid-epoch
        merged = merge_fluid(
            observation, window, offered=104, allocation=allocation,
            capacity=10.0,
        )
        assert merged.server_rates == (
            ("s1", 4.5), ("s2", 2.0), ("s3", 2.5)
        )
        # Nothing lost in either direction: totals are the exact sum.
        assert math.isclose(
            sum(rate for _, rate in merged.server_rates),
            sum(rate for _, rate in observation.server_rates)
            + sum(share for _, share in allocation),
        )
        assert merged.offered == 104
        assert merged.served == 18
        assert merged.cohort == 4
        assert merged.fluid_clients == 100.0

    def test_merge_is_name_sorted_and_deterministic(self):
        observation = self.observation((("s2", 2.0), ("s9", 1.0)))
        window = SimpleNamespace(
            served_rate=1.0, demand_rate=1.0, served=2, offered_mean=5.0
        )
        allocation = (("s1", 0.5), ("s2", 0.25))
        merged = merge_fluid(
            observation, window, offered=9, allocation=allocation,
            capacity=4.0,
        )
        assert merged.server_rates == (
            ("s1", 0.5), ("s2", 2.25), ("s9", 1.0)
        )
        assert [name for name, _ in merged.server_rates] == sorted(
            name for name, _ in merged.server_rates
        )
