"""Heterogeneous-communication extension (the paper's future work)."""

import pytest

from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.core.throughput import (
    agent_sched_throughput,
    hierarchy_throughput,
)
from repro.errors import ParameterError, PlanningError
from repro.extensions.hetcomm import (
    HetCommPlanner,
    HetCommPlatform,
    het_agent_sched_throughput,
    het_hierarchy_throughput,
    het_server_sched_throughput,
    het_service_throughput,
)
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

PARAMS = ModelParams()


class TestRateFunctions:
    def test_agent_rate_reduces_to_homogeneous(self):
        # With b_i == B the extended agent rate equals Eq. 14's term.
        for degree in (1, 3, 10):
            assert het_agent_sched_throughput(
                PARAMS, 265.0, PARAMS.bandwidth, degree
            ) == pytest.approx(agent_sched_throughput(PARAMS, 265.0, degree))

    def test_agent_rate_decreasing_in_degree_and_increasing_in_bandwidth(self):
        rates = [
            het_agent_sched_throughput(PARAMS, 265.0, 100.0, d)
            for d in range(1, 20)
        ]
        assert all(a > b for a, b in zip(rates, rates[1:]))
        assert het_agent_sched_throughput(
            PARAMS, 265.0, 1000.0, 5
        ) > het_agent_sched_throughput(PARAMS, 265.0, 10.0, 5)

    def test_server_rate_positive_and_monotone(self):
        slow = het_server_sched_throughput(PARAMS, 265.0, 1.0)
        fast = het_server_sched_throughput(PARAMS, 265.0, 1000.0)
        assert 0 < slow < fast

    def test_service_throughput_close_to_eq15_when_uniform(self):
        # The extended formula bills the scheduling round-trip inside the
        # per-server cost; with Table 3's tiny messages the difference
        # from Eq. 15 is far below a percent.
        from repro.core.throughput import service_throughput

        powers = [265.0, 200.0, 150.0]
        works = [16.0] * 3
        uniform = het_service_throughput(
            PARAMS, powers, [PARAMS.bandwidth] * 3, works
        )
        eq15 = service_throughput(PARAMS, powers, works)
        assert uniform == pytest.approx(eq15, rel=1e-3)

    def test_slow_uplink_throttles_service(self):
        fast = het_service_throughput(PARAMS, [265.0], [1000.0], [16.0])
        slow = het_service_throughput(PARAMS, [265.0], [0.01], [16.0])
        assert slow < fast

    def test_validation(self):
        with pytest.raises(ParameterError):
            het_agent_sched_throughput(PARAMS, 0.0, 100.0, 1)
        with pytest.raises(ParameterError):
            het_server_sched_throughput(PARAMS, 265.0, 0.0)
        with pytest.raises(ParameterError):
            het_service_throughput(PARAMS, [1.0], [1.0, 2.0], [1.0])
        with pytest.raises(ParameterError):
            het_service_throughput(PARAMS, [], [], [])


class TestPlatform:
    def test_uniform_constructor(self):
        platform = HetCommPlatform.uniform(NodePool.homogeneous(4, 100.0), 500.0)
        assert platform.bandwidth_of("node-0") == 500.0

    def test_clustered_constructor(self):
        pool = NodePool.homogeneous(5, 100.0)
        platform = HetCommPlatform.clustered(pool, [2, 3], [1000.0, 100.0])
        assert platform.bandwidth_of("node-1") == 1000.0
        assert platform.bandwidth_of("node-4") == 100.0

    def test_missing_bandwidth_rejected(self):
        pool = NodePool.homogeneous(3, 100.0)
        with pytest.raises(ParameterError):
            HetCommPlatform(pool, {"node-0": 1.0})

    def test_clustered_size_mismatch_rejected(self):
        pool = NodePool.homogeneous(3, 100.0)
        with pytest.raises(ParameterError):
            HetCommPlatform.clustered(pool, [1, 1], [1.0, 1.0])


class TestHierarchyThroughput:
    def _pair(self) -> Hierarchy:
        h = Hierarchy()
        h.set_root("a", 265.0)
        h.add_server("s", 265.0, "a")
        return h

    def test_reduces_to_homogeneous_model(self):
        h = self._pair()
        pool = NodePool([])
        platform = HetCommPlatform(
            NodePool.heterogeneous([265.0, 265.0], prefix="x"),
            {"a": PARAMS.bandwidth, "s": PARAMS.bandwidth, "x-0": 1.0, "x-1": 1.0},
        )
        del pool
        rho = het_hierarchy_throughput(h, platform, PARAMS, 16.0)
        reference = hierarchy_throughput(h, PARAMS, 16.0).throughput
        assert rho == pytest.approx(reference, rel=1e-3)

    def test_slow_agent_uplink_becomes_bottleneck(self):
        h = self._pair()
        fast = HetCommPlatform(
            NodePool.heterogeneous([1.0], prefix="z"),
            {"a": 1000.0, "s": 1000.0, "z-0": 1.0},
        )
        slow = HetCommPlatform(
            NodePool.heterogeneous([1.0], prefix="z"),
            {"a": 0.05, "s": 1000.0, "z-0": 1.0},
        )
        assert het_hierarchy_throughput(
            h, slow, PARAMS, 16.0
        ) < het_hierarchy_throughput(h, fast, PARAMS, 16.0)


class TestPlanner:
    def test_uniform_platform_matches_core_planner_quality(self):
        from repro.core.heuristic import HeuristicPlanner

        pool = NodePool.uniform_random(24, low=100, high=400, seed=17)
        platform = HetCommPlatform.uniform(pool, PARAMS.bandwidth)
        wapp = dgemm_mflop(310)
        het_plan = HetCommPlanner(PARAMS).plan(platform, wapp)
        core_plan = HeuristicPlanner(PARAMS).plan(pool, wapp)
        assert het_plan.throughput == pytest.approx(
            core_plan.throughput, rel=0.02
        )

    def test_plans_are_strictly_valid(self):
        pool = NodePool.uniform_random(20, low=100, high=400, seed=3)
        platform = HetCommPlatform.clustered(
            pool, [10, 10], [1000.0, 100.0]
        )
        for size in (10, 200, 1000):
            plan = HetCommPlanner(PARAMS).plan(platform, dgemm_mflop(size))
            plan.hierarchy.validate(strict=True)

    def test_avoids_slow_uplink_agents(self):
        # Two equal-power groups; one sits behind a crawling uplink.  The
        # planner must pick its agents from the fast-uplink group.
        pool = NodePool.homogeneous(20, 265.0)
        platform = HetCommPlatform.clustered(pool, [10, 10], [1000.0, 0.5])
        plan = HetCommPlanner(PARAMS).plan(platform, dgemm_mflop(200))
        for agent in plan.hierarchy.agents:
            assert platform.bandwidth_of(str(agent)) == 1000.0

    def test_homogeneous_planner_misjudges_het_links(self):
        """The point of the extension: on a mixed-uplink platform the
        homogeneous planner (fed the mean bandwidth) produces a plan whose
        *actual* throughput is below the het-aware plan's."""
        from repro.core.heuristic import HeuristicPlanner

        pool = NodePool.homogeneous(24, 265.0)
        platform = HetCommPlatform.clustered(pool, [12, 12], [1000.0, 2.0])
        wapp = dgemm_mflop(200)
        aware = HetCommPlanner(PARAMS).plan(platform, wapp)
        naive_h = HeuristicPlanner(
            PARAMS.with_bandwidth(501.0)
        ).plan(pool, wapp).hierarchy
        naive_rho = het_hierarchy_throughput(naive_h, platform, PARAMS, wapp)
        assert aware.throughput >= naive_rho - 1e-9

    def test_demand_least_resources(self):
        pool = NodePool.homogeneous(30, 265.0)
        platform = HetCommPlatform.uniform(pool, 1000.0)
        plan = HetCommPlanner(PARAMS).plan(platform, dgemm_mflop(200), demand=40.0)
        assert plan.throughput >= 40.0 - 1e-6
        assert plan.nodes_used <= 6

    def test_rejects_tiny_pool(self):
        platform = HetCommPlatform.uniform(NodePool.homogeneous(1, 100.0), 1.0)
        with pytest.raises(PlanningError):
            HetCommPlanner(PARAMS).plan(platform, 1.0)
