"""Heterogeneous-communication model vs the DES.

The extension's rate equations claim to describe the simulated middleware
when per-node bandwidths are wired into the elements; these tests pin the
convergence, mirroring test_model_vs_sim.py for the homogeneous model.
"""

import pytest

from repro.core.baselines import star_deployment
from repro.core.params import ModelParams
from repro.extensions.hetcomm import (
    HetCommPlanner,
    HetCommPlatform,
    het_hierarchy_throughput,
)
from repro.middleware.client import ClosedLoopClient
from repro.middleware.system import MiddlewareSystem
from repro.platforms.pool import NodePool
from repro.sim.engine import Simulator
from repro.units import dgemm_mflop

PARAMS = ModelParams()


def measure(hierarchy, platform, app_work, clients, duration=15.0):
    sim = Simulator()
    system = MiddlewareSystem(
        sim, hierarchy, PARAMS, app_work,
        bandwidths=platform.bandwidths,
    )
    pool = [ClosedLoopClient(system, f"c{i}") for i in range(clients)]
    for index, client in enumerate(pool):
        sim.schedule(index * 0.01, client.start)
    sim.run_until(duration)
    return system.completions.rate(duration * 0.4, duration)


class TestHetCommConvergence:
    def test_uniform_bandwidths_match_homogeneous_runs(self):
        # Wiring explicit uniform bandwidths must not change behaviour.
        pool = NodePool.homogeneous(4, 265.0)
        h = star_deployment(pool)
        platform = HetCommPlatform.uniform(pool, PARAMS.bandwidth)
        wapp = dgemm_mflop(200)
        het = measure(h, platform, wapp, clients=40)
        predicted = het_hierarchy_throughput(h, platform, PARAMS, wapp)
        assert het == pytest.approx(predicted, rel=0.05)

    def test_slow_server_uplinks_measured(self):
        # Half the servers sit behind a link that makes the service
        # message exchange significant; the extended model must predict
        # the measured rate where the homogeneous model overshoots.
        pool = NodePool.homogeneous(5, 265.0)
        h = star_deployment(pool)
        platform = HetCommPlatform(
            pool,
            {
                "node-0": 1000.0,  # agent
                "node-1": 1000.0,
                "node-2": 1000.0,
                "node-3": 0.005,   # ~26 ms per service round trip
                "node-4": 0.005,
            },
        )
        wapp = dgemm_mflop(200)
        predicted = het_hierarchy_throughput(h, platform, PARAMS, wapp)
        measured = measure(h, platform, wapp, clients=60, duration=20.0)
        assert measured == pytest.approx(predicted, rel=0.08)
        # And the slow links genuinely cost throughput.
        fast = HetCommPlatform.uniform(pool, 1000.0)
        assert predicted < het_hierarchy_throughput(h, fast, PARAMS, wapp)

    def test_planned_deployment_measures_as_promised(self):
        pool = NodePool.homogeneous(16, 265.0)
        platform = HetCommPlatform.clustered(
            pool, [8, 8], [1000.0, 0.01]
        )
        wapp = dgemm_mflop(200)
        plan = HetCommPlanner(PARAMS).plan(platform, wapp)
        measured = measure(
            plan.hierarchy, platform, wapp, clients=80, duration=20.0
        )
        assert measured == pytest.approx(plan.throughput, rel=0.08)

    def test_bandwidths_must_cover_all_nodes(self):
        from repro.errors import DeploymentError

        pool = NodePool.homogeneous(3, 265.0)
        h = star_deployment(pool)
        sim = Simulator()
        with pytest.raises(DeploymentError):
            MiddlewareSystem(
                sim, h, PARAMS, 1.0, bandwidths={"node-0": 1.0}
            )
