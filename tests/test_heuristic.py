"""The deployment heuristic (Algorithm 1)."""

import pytest

from repro.core.heuristic import (
    HeuristicPlanner,
    calc_hier_ser_pow,
    calc_sch_pow,
    sort_nodes,
    supported_children,
)
from repro.core.params import ModelParams
from repro.core.throughput import (
    agent_sched_throughput,
    hierarchy_throughput,
    service_throughput,
)
from repro.errors import PlanningError
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.fixture
def p() -> ModelParams:
    return ModelParams()


@pytest.fixture
def planner(p) -> HeuristicPlanner:
    return HeuristicPlanner(p)


class TestProcedures:
    """The paper's Table 1 procedures."""

    def test_calc_sch_pow_matches_agent_rate(self, p):
        assert calc_sch_pow(p, 265.0, 5) == pytest.approx(
            agent_sched_throughput(p, 265.0, 5)
        )

    def test_calc_hier_ser_pow_matches_eq15(self, p):
        assert calc_hier_ser_pow(p, [265.0, 200.0], 16.0) == pytest.approx(
            service_throughput(p, [265.0, 200.0], [16.0, 16.0])
        )

    def test_sort_nodes_descending_power(self, p):
        pool = NodePool.heterogeneous([100.0, 300.0, 200.0])
        ranked = sort_nodes(pool, p)
        assert [n.power for n in ranked] == [300.0, 200.0, 100.0]

    def test_sort_nodes_deterministic_on_ties(self, p):
        pool = NodePool.homogeneous(5, 100.0)
        first = [n.name for n in sort_nodes(pool, p)]
        second = [n.name for n in sort_nodes(pool, p)]
        assert first == second

    def test_supported_children_consistent_with_rate(self, p):
        target = 500.0
        d = supported_children(p, 265.0, target)
        assert d >= 1
        assert calc_sch_pow(p, 265.0, d) >= target
        assert calc_sch_pow(p, 265.0, d + 1) < target

    def test_supported_children_zero_when_target_unreachable(self, p):
        max_rate = calc_sch_pow(p, 265.0, 1)
        assert supported_children(p, 265.0, max_rate * 2) == 0

    def test_supported_children_grows_as_target_falls(self, p):
        counts = [
            supported_children(p, 265.0, target)
            for target in (1400.0, 1000.0, 500.0, 100.0)
        ]
        assert counts == sorted(counts)

    def test_supported_children_rejects_bad_target(self, p):
        with pytest.raises(PlanningError):
            supported_children(p, 265.0, 0.0)


class TestPaperScenarios:
    """The qualitative outcomes §5 reports."""

    def test_tiny_grain_one_agent_one_server(self, planner):
        # Step 6 early exit: DGEMM 10x10 is scheduling-bound at degree 1.
        pool = NodePool.homogeneous(21, 265.0)
        plan = planner.plan(pool, dgemm_mflop(10))
        assert plan.hierarchy.shape_signature() == (2, 1, 1, 1)
        assert plan.root_degree == 1

    def test_huge_grain_spanning_star(self, planner):
        # Figure 7: DGEMM 1000x1000 -> the heuristic generates a star.
        pool = NodePool.homogeneous(40, 265.0)
        plan = planner.plan(pool, dgemm_mflop(1000))
        assert len(plan.hierarchy.agents) == 1
        assert plan.nodes_used == 40
        assert plan.report.is_service_bound

    def test_medium_grain_beats_star_and_balanced(self, p, planner):
        # Figure 6: heterogeneous pool, DGEMM 310x310.
        from repro.core.baselines import balanced_deployment, star_deployment
        from repro.platforms.background import heterogenize

        pool = heterogenize(
            NodePool.homogeneous(60, 265.0), loaded_fraction=0.5, seed=3
        )
        wapp = dgemm_mflop(310)
        plan = planner.plan(pool, wapp)
        star_rho = hierarchy_throughput(star_deployment(pool), p, wapp).throughput
        balanced_rho = hierarchy_throughput(
            balanced_deployment(pool, 7), p, wapp
        ).throughput
        assert plan.throughput > balanced_rho
        assert plan.throughput > star_rho

    def test_fast_nodes_become_agents(self, p, planner):
        pool = NodePool.heterogeneous(
            [400.0, 390.0] + [100.0] * 30
        )
        plan = planner.plan(pool, dgemm_mflop(310))
        for agent in plan.hierarchy.agents:
            assert plan.hierarchy.power(agent) >= 390.0


class TestDemand:
    def test_demand_met_with_fewer_nodes(self, planner):
        pool = NodePool.homogeneous(40, 265.0)
        wapp = dgemm_mflop(200)
        free = planner.plan(pool, wapp)
        capped = planner.plan(pool, wapp, demand=40.0)
        assert capped.throughput >= 40.0 - 1e-6
        assert capped.nodes_used < free.nodes_used

    def test_tiny_demand_minimal_deployment(self, planner):
        pool = NodePool.homogeneous(40, 265.0)
        plan = planner.plan(pool, dgemm_mflop(200), demand=5.0)
        assert plan.nodes_used == 2

    def test_unreachable_demand_returns_best_effort(self, planner):
        pool = NodePool.homogeneous(10, 265.0)
        wapp = dgemm_mflop(1000)
        capped = planner.plan(pool, wapp, demand=1e9)
        free = planner.plan(pool, wapp)
        assert capped.throughput == pytest.approx(free.throughput, rel=1e-6)

    def test_rejects_nonpositive_demand(self, planner):
        with pytest.raises(PlanningError):
            planner.plan(NodePool.homogeneous(4, 100.0), 1.0, demand=0.0)


class TestStrategies:
    def test_incremental_strategy_valid_and_reasonable(self, p):
        planner = HeuristicPlanner(p, strategy="incremental")
        pool = NodePool.uniform_random(30, low=80, high=400, seed=11)
        plan = planner.plan(pool, dgemm_mflop(310))
        plan.hierarchy.validate(strict=True)
        assert plan.strategy == "incremental"
        assert plan.steps  # the trace is recorded
        assert plan.throughput > 0

    def test_fixed_point_at_least_as_good_as_incremental(self, p):
        pool = NodePool.uniform_random(30, low=80, high=400, seed=11)
        wapp = dgemm_mflop(310)
        fixed = HeuristicPlanner(p).plan(pool, wapp)
        incremental = HeuristicPlanner(p, strategy="incremental").plan(pool, wapp)
        assert fixed.throughput >= incremental.throughput - 1e-9

    def test_promotion_ablation_limits_to_star(self, p):
        planner = HeuristicPlanner(
            p, strategy="incremental", allow_promotion=False
        )
        pool = NodePool.homogeneous(20, 265.0)
        plan = planner.plan(pool, dgemm_mflop(310))
        assert len(plan.hierarchy.agents) == 1

    def test_unknown_strategy_rejected(self, p):
        with pytest.raises(PlanningError):
            HeuristicPlanner(p, strategy="magic")

    def test_bad_patience_rejected(self, p):
        with pytest.raises(PlanningError):
            HeuristicPlanner(p, patience=0)


class TestRobustness:
    def test_two_node_pool(self, planner):
        plan = planner.plan(NodePool.homogeneous(2, 265.0), 16.0)
        assert plan.hierarchy.shape_signature() == (2, 1, 1, 1)

    def test_one_node_pool_rejected(self, planner):
        with pytest.raises(PlanningError):
            planner.plan(NodePool.homogeneous(1, 265.0), 16.0)

    def test_rejects_nonpositive_work(self, planner):
        with pytest.raises(PlanningError):
            planner.plan(NodePool.homogeneous(4, 265.0), 0.0)

    def test_plans_always_strictly_valid(self, planner):
        for seed in range(5):
            pool = NodePool.uniform_random(25, low=40, high=500, seed=seed)
            for size in (10, 100, 310, 1000):
                plan = planner.plan(pool, dgemm_mflop(size))
                plan.hierarchy.validate(strict=True)

    def test_deterministic(self, planner):
        pool = NodePool.uniform_random(25, low=40, high=500, seed=9)
        a = planner.plan(pool, dgemm_mflop(310))
        b = planner.plan(pool, dgemm_mflop(310))
        assert a.hierarchy.nodes == b.hierarchy.nodes
        assert a.throughput == pytest.approx(b.throughput)

    def test_describe_mentions_throughput(self, planner):
        plan = planner.plan(NodePool.homogeneous(6, 265.0), 16.0)
        assert "req/s" in plan.describe()

    def test_report_matches_fresh_evaluation(self, p, planner):
        pool = NodePool.uniform_random(20, low=60, high=350, seed=2)
        wapp = dgemm_mflop(310)
        plan = planner.plan(pool, wapp)
        fresh = hierarchy_throughput(plan.hierarchy, p, wapp).throughput
        assert plan.throughput == pytest.approx(fresh)
