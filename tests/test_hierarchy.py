"""Deployment hierarchy structure."""

import numpy as np
import pytest

from repro.core.hierarchy import Hierarchy, Role
from repro.errors import HierarchyError


def build_sample() -> Hierarchy:
    """root -> (s1, a1 -> (s2, s3))."""
    h = Hierarchy()
    h.set_root("root", 100.0)
    h.add_server("s1", 90.0, "root")
    h.add_agent("a1", 80.0, "root")
    h.add_server("s2", 70.0, "a1")
    h.add_server("s3", 60.0, "a1")
    return h


class TestConstruction:
    def test_roles_and_structure(self):
        h = build_sample()
        assert h.role("root") is Role.AGENT
        assert h.role("s1") is Role.SERVER
        assert h.parent("a1") == "root"
        assert h.children("a1") == ("s2", "s3")
        assert h.degree("root") == 2
        assert len(h) == 5

    def test_double_root_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.set_root("other", 1.0)

    def test_duplicate_node_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.add_server("s1", 1.0, "root")

    def test_nonpositive_power_rejected(self):
        h = Hierarchy()
        with pytest.raises(HierarchyError):
            h.set_root("root", 0.0)

    def test_children_under_server_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.add_server("bad", 1.0, "s1")

    def test_unknown_parent_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.add_server("bad", 1.0, "ghost")


class TestTraversal:
    def test_bfs_order(self):
        h = build_sample()
        assert h.nodes == ["root", "s1", "a1", "s2", "s3"]

    def test_agents_and_servers_partition(self):
        h = build_sample()
        assert set(h.agents) | set(h.servers) == set(h.nodes)
        assert not set(h.agents) & set(h.servers)

    def test_depth_and_height(self):
        h = build_sample()
        assert h.depth("root") == 0
        assert h.depth("s3") == 2
        assert h.height == 2

    def test_subtree(self):
        h = build_sample()
        assert h.subtree("a1") == ["a1", "s2", "s3"]

    def test_contains_and_iter(self):
        h = build_sample()
        assert "s2" in h
        assert "nope" not in h
        assert list(h) == h.nodes

    def test_shape_signature(self):
        assert build_sample().shape_signature() == (5, 2, 3, 2)


class TestMutations:
    def test_promote_then_demote(self):
        h = build_sample()
        h.promote("s1")
        assert h.role("s1") is Role.AGENT
        h.demote("s1")
        assert h.role("s1") is Role.SERVER

    def test_promote_non_server_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.promote("a1")

    def test_demote_root_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.demote("root")

    def test_demote_agent_with_children_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.demote("a1")

    def test_reattach_moves_subtree(self):
        h = build_sample()
        h.promote("s1")
        h.reattach("s2", "s1")
        assert h.parent("s2") == "s1"
        assert h.children("a1") == ("s3",)

    def test_reattach_into_own_subtree_rejected(self):
        h = build_sample()
        h.promote("s2")
        with pytest.raises(HierarchyError):
            h.reattach("a1", "s2")

    def test_reattach_to_server_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.reattach("s2", "s1")

    def test_remove_leaf(self):
        h = build_sample()
        h.remove_leaf("s3")
        assert "s3" not in h
        assert h.children("a1") == ("s2",)

    def test_remove_nonleaf_rejected(self):
        h = build_sample()
        with pytest.raises(HierarchyError):
            h.remove_leaf("a1")


class TestValidation:
    def test_sample_is_strictly_valid(self):
        build_sample().validate(strict=True)

    def test_single_child_inner_agent_fails_strict(self):
        h = build_sample()
        h.remove_leaf("s3")  # a1 now has one child
        with pytest.raises(HierarchyError):
            h.validate(strict=True)
        h.validate(strict=False)  # but is structurally fine

    def test_empty_hierarchy_invalid(self):
        with pytest.raises(HierarchyError):
            Hierarchy().validate()

    def test_root_without_children_invalid(self):
        h = Hierarchy()
        h.set_root("root", 1.0)
        with pytest.raises(HierarchyError):
            h.validate(strict=True)

    def test_all_agent_deployment_invalid(self):
        h = Hierarchy()
        h.set_root("root", 1.0)
        h.add_agent("a", 1.0, "root")
        h.add_agent("b", 1.0, "a")
        h.add_agent("c", 1.0, "a")
        with pytest.raises(HierarchyError):
            h.validate(strict=True)


class TestExports:
    def test_adjacency_matrix(self):
        h = build_sample()
        matrix, order = h.adjacency_matrix()
        index = {n: i for i, n in enumerate(order)}
        assert matrix.shape == (5, 5)
        assert matrix.sum() == 4  # n - 1 edges
        assert matrix[index["root"], index["s1"]] == 1
        assert matrix[index["a1"], index["s2"]] == 1
        assert matrix[index["s1"], index["root"]] == 0

    def test_adjacency_column_sums_are_parent_counts(self):
        matrix, order = build_sample().adjacency_matrix()
        col_sums = matrix.sum(axis=0)
        # Every node except the root has exactly one parent.
        assert sorted(col_sums.tolist()) == [0, 1, 1, 1, 1]
        assert np.trace(matrix) == 0

    def test_to_networkx(self):
        graph = build_sample().to_networkx()
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert graph.nodes["root"]["role"] == "agent"
        assert graph.nodes["s1"]["power"] == 90.0

    def test_copy_is_independent(self):
        h = build_sample()
        clone = h.copy()
        clone.remove_leaf("s3")
        assert "s3" in h
        assert "s3" not in clone

    def test_describe_mentions_all_nodes(self):
        text = build_sample().describe()
        for node in build_sample().nodes:
            assert repr(node) in text

    def test_to_dot_structure(self):
        h = build_sample()
        dot = h.to_dot(title="t")
        assert dot.startswith('digraph "t" {')
        assert dot.rstrip().endswith("}")
        # One node statement per node, one edge per parent-child pair.
        assert dot.count("->") == len(h) - 1
        assert dot.count("shape=box") == len(h.agents)
        assert dot.count("shape=ellipse") == len(h.servers)
        assert '"root" -> "a1";' in dot
