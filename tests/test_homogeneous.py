"""Homogeneous-optimal planner (complete spanning d-ary trees, ref [10])."""

import pytest

from repro.core.homogeneous import HomogeneousPlanner
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.errors import PlanningError
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.fixture
def planner() -> HomogeneousPlanner:
    return HomogeneousPlanner(ModelParams())


class TestDegreeSelection:
    def test_tiny_grain_selects_pair(self, planner):
        # DGEMM 10x10 on 21 nodes: Table 4 row 1 — degree 1.
        pool = NodePool.homogeneous(21, 265.0)
        plan = planner.plan(pool, dgemm_mflop(10))
        assert plan.degree == 1
        assert plan.nodes_used == 2

    def test_huge_grain_selects_star(self, planner):
        # DGEMM 1000: service-bound; every node should serve.
        pool = NodePool.homogeneous(21, 265.0)
        plan = planner.plan(pool, dgemm_mflop(1000))
        assert plan.nodes_used == 21
        assert plan.degree == 20

    def test_selected_plan_beats_other_degrees(self, planner):
        from repro.core.baselines import dary_deployment

        pool = NodePool.homogeneous(18, 265.0)
        wapp = dgemm_mflop(150)
        plan = planner.plan(pool, wapp)
        for degree in range(1, len(pool)):
            other = dary_deployment(pool, degree)
            other_rho = hierarchy_throughput(
                other, planner.params, wapp
            ).throughput
            assert plan.throughput >= other_rho - 1e-9

    def test_best_degree_helper_matches_plan(self, planner):
        pool = NodePool.homogeneous(12, 265.0)
        wapp = dgemm_mflop(200)
        assert planner.best_degree(pool, wapp) == planner.plan(pool, wapp).degree


class TestSpanningOnly:
    def test_spanning_uses_all_nodes(self):
        planner = HomogeneousPlanner(ModelParams(), spanning_only=True)
        pool = NodePool.homogeneous(15, 265.0)
        plan = planner.plan(pool, dgemm_mflop(10))
        assert plan.nodes_used == 15

    def test_free_planner_at_least_as_good(self):
        params = ModelParams()
        pool = NodePool.homogeneous(15, 265.0)
        for size in (10, 100, 310, 1000):
            wapp = dgemm_mflop(size)
            free = HomogeneousPlanner(params).plan(pool, wapp)
            spanning = HomogeneousPlanner(params, spanning_only=True).plan(
                pool, wapp
            )
            assert free.throughput >= spanning.throughput - 1e-9


class TestDemand:
    def test_cheapest_satisfying_deployment(self, planner):
        pool = NodePool.homogeneous(30, 265.0)
        wapp = dgemm_mflop(200)  # ~16.5 req/s per server
        plan = planner.plan(pool, wapp, demand=50.0)
        assert plan.throughput >= 50.0
        # ~4 servers satisfy 50 req/s; far fewer than 30 nodes.
        assert plan.nodes_used <= 8

    def test_unsatisfiable_demand_returns_best(self, planner):
        pool = NodePool.homogeneous(5, 265.0)
        plan_capped = planner.plan(pool, dgemm_mflop(1000), demand=1e9)
        plan_free = planner.plan(pool, dgemm_mflop(1000))
        assert plan_capped.throughput == pytest.approx(plan_free.throughput)


class TestValidation:
    def test_plans_are_strictly_valid(self, planner):
        pool = NodePool.homogeneous(9, 265.0)
        for size in (10, 100, 310, 1000):
            planner.plan(pool, dgemm_mflop(size)).hierarchy.validate(strict=True)

    def test_rejects_tiny_pool(self, planner):
        with pytest.raises(PlanningError):
            planner.plan(NodePool.homogeneous(1, 265.0), 1.0)
