"""End-to-end integration scenarios.

Each test walks the full pipeline the paper describes: rate a platform,
plan a deployment, serialize it, validate and launch it with the GoDIET
analogue, drive it with the §5.1 client protocol, and check the measured
outcome against the model and against the paper's qualitative claims.
"""

import pytest

from repro.analysis.experiments import run_fixed_load
from repro.calibration.table3 import calibrate
from repro.core.params import DEFAULT_PARAMS
from repro.core.planner import plan_deployment
from repro.deploy.godiet import GoDIET
from repro.deploy.plan import DeploymentPlan
from repro.deploy.xml_io import plan_from_xml, plan_to_xml
from repro.platforms.background import heterogenize
from repro.platforms.pool import NodePool
from repro.platforms.rating import rate_pool
from repro.units import dgemm_mflop
from repro.workloads.loadgen import ClientRamp


class TestFullPipeline:
    def test_rate_plan_serialize_launch_measure(self, tmp_path):
        # 1. Platform: heterogenize + rate (the §5.3 methodology).
        base = NodePool.homogeneous(24, 265.0, prefix="orsay")
        pool = rate_pool(heterogenize(base, loaded_fraction=0.5, seed=2))

        # 2. Plan.
        wapp = dgemm_mflop(310)
        deployment = plan_deployment(pool, wapp)

        # 3. Serialize through disk, as a deployment tool would.
        plan = DeploymentPlan(
            hierarchy=deployment.hierarchy,
            params=deployment.params,
            app_work=wapp,
            method=deployment.method,
        )
        path = tmp_path / "plan.xml"
        path.write_text(plan_to_xml(plan))
        restored = plan_from_xml(path.read_text())
        assert restored.predicted_throughput == pytest.approx(
            plan.predicted_throughput
        )

        # 4. Validate + launch against the pool it was planned for.
        platform = GoDIET().launch(restored, pool=pool)

        # 5. Ramp to saturation and hold (§5.1).
        ramp = ClientRamp(
            client_interval=0.1, max_clients=200, hold_duration=6.0
        )
        result = ramp.run(platform.system)

        # 6. The measurement matches the model's promise.
        assert result.max_sustained == pytest.approx(
            restored.predicted_throughput, rel=0.08
        )

    def test_calibrate_then_plan_round_trip(self):
        """Parameters measured from the simulated middleware plan as well
        as the ground truth they estimate."""
        calibration = calibrate(
            DEFAULT_PARAMS,
            capture_repetitions=20,
            fit_degrees=(1, 4, 8),
            fit_repetitions=5,
        )
        pool = NodePool.uniform_random(16, low=100, high=350, seed=6)
        wapp = dgemm_mflop(310)
        with_truth = plan_deployment(pool, wapp, params=DEFAULT_PARAMS)
        with_calibrated = plan_deployment(pool, wapp, params=calibration.params)
        assert with_calibrated.throughput == pytest.approx(
            with_truth.throughput, rel=1e-3
        )
        assert (
            with_calibrated.hierarchy.shape_signature()
            == with_truth.hierarchy.shape_signature()
        )


class TestPaperClaims:
    """The headline qualitative claims, end to end in the DES."""

    def test_tiny_grain_pair_beats_bigger_deployments_measured(self):
        pool = NodePool.homogeneous(6, 265.0)
        wapp = dgemm_mflop(10)
        pair = plan_deployment(pool, wapp).hierarchy
        assert pair.shape_signature() == (2, 1, 1, 1)
        star = plan_deployment(pool, wapp, method="star").hierarchy
        pair_rate = run_fixed_load(
            pair, DEFAULT_PARAMS, wapp, clients=50, duration=5.0
        ).throughput
        star_rate = run_fixed_load(
            star, DEFAULT_PARAMS, wapp, clients=50, duration=5.0
        ).throughput
        assert pair_rate > star_rate

    def test_demand_satisfaction_holds_in_simulation(self):
        pool = NodePool.uniform_random(40, low=100, high=400, seed=3)
        wapp = dgemm_mflop(200)
        demand = 60.0
        deployment = plan_deployment(pool, wapp, demand=demand)
        measured = run_fixed_load(
            deployment.hierarchy, DEFAULT_PARAMS, wapp,
            clients=80, duration=15.0,
        ).throughput
        assert measured >= demand * 0.95
        assert deployment.nodes_used < len(pool)

    def test_least_resources_preference(self):
        """Among deployments with (near-)equal throughput the planner
        returns the smaller one — the paper's tie-breaking rule."""
        pool = NodePool.homogeneous(30, 265.0)
        wapp = dgemm_mflop(10)  # scheduling-bound: extra servers useless
        deployment = plan_deployment(pool, wapp)
        assert deployment.nodes_used == 2
