"""Batched kernels and memoized evaluation (`repro.core.kernels`).

The contract under test: every batched/cached quantity equals the scalar
Eq. 11–16 reference — bit-for-bit where the expressions match, within
1e-12 relative where a closed form replaces a sequential sum — and the
NumPy and pure-Python backends of each kernel agree exactly.
"""

from __future__ import annotations

import random

import pytest

import repro.core.kernels as kernels
from repro.core.baselines import balanced_deployment, star_deployment
from repro.core.heuristic import HeuristicPlanner, supported_children
from repro.core.kernels import (
    HierarchyEvaluator,
    NodeArrays,
    agent_sched_throughput_many,
    server_sched_throughput_many,
    service_throughput_prefixes,
    supported_children_many,
)
from repro.core.params import DEFAULT_PARAMS, LevelSizes, ModelParams
from repro.core.throughput import (
    agent_sched_throughput,
    hierarchy_throughput,
    server_sched_throughput,
    service_throughput,
)
from repro.errors import ParameterError, PlanningError
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


def random_params(rng: random.Random) -> ModelParams:
    return ModelParams(
        wreq=rng.uniform(1e-3, 1.0),
        wfix=rng.uniform(1e-4, 0.1),
        wsel=rng.uniform(1e-4, 0.1),
        wpre=rng.uniform(1e-4, 0.1),
        agent_sizes=LevelSizes(
            sreq=rng.uniform(1e-4, 1e-1), srep=rng.uniform(1e-4, 1e-1)
        ),
        server_sizes=LevelSizes(
            sreq=rng.uniform(1e-6, 1e-3), srep=rng.uniform(1e-6, 1e-3)
        ),
        bandwidth=rng.uniform(10.0, 10_000.0),
    )


def random_powers(rng: random.Random, count: int) -> list[float]:
    return [rng.uniform(5.0, 5000.0) for _ in range(count)]


@pytest.fixture(params=["numpy", "python"])
def backend(request, monkeypatch):
    """Run each kernel test under both backends."""
    if request.param == "numpy" and not kernels.HAVE_NUMPY:
        pytest.skip("NumPy unavailable")
    monkeypatch.setattr(kernels, "_USE_NUMPY", request.param == "numpy")
    return request.param


class TestBatchedKernels:
    """Property-style: batched kernels == scalar Eqs. 11-16, randomized."""

    def test_agent_rates_match_scalar_exactly(self, backend):
        rng = random.Random(11)
        for _ in range(20):
            params = random_params(rng)
            powers = random_powers(rng, rng.randrange(1, 40))
            degree = rng.randrange(1, 30)
            batch = agent_sched_throughput_many(params, powers, degree)
            scalar = [
                agent_sched_throughput(params, p, degree) for p in powers
            ]
            assert batch == scalar  # bit-identical, not merely close

    def test_agent_rates_per_node_degrees(self, backend):
        rng = random.Random(13)
        params = random_params(rng)
        powers = random_powers(rng, 25)
        degrees = [rng.randrange(1, 12) for _ in powers]
        batch = agent_sched_throughput_many(params, powers, degrees)
        scalar = [
            agent_sched_throughput(params, p, d)
            for p, d in zip(powers, degrees)
        ]
        assert batch == scalar

    def test_server_rates_match_scalar_exactly(self, backend):
        rng = random.Random(17)
        for _ in range(20):
            params = random_params(rng)
            powers = random_powers(rng, rng.randrange(1, 40))
            batch = server_sched_throughput_many(params, powers)
            scalar = [server_sched_throughput(params, p) for p in powers]
            assert batch == scalar

    def test_supported_children_match_scalar_exactly(self, backend):
        rng = random.Random(19)
        for _ in range(20):
            params = random_params(rng)
            powers = random_powers(rng, rng.randrange(1, 40))
            # Sweep targets from far-too-fast to easily met.
            fastest = max(
                agent_sched_throughput(params, p, 1) for p in powers
            )
            for scale in (2.0, 1.0, 0.3, 0.01, 1e-4):
                target = fastest * scale
                batch = supported_children_many(params, powers, target)
                scalar = [
                    supported_children(params, p, target) for p in powers
                ]
                assert batch == scalar

    def test_service_prefixes_match_eq15_within_1e12(self, backend):
        rng = random.Random(23)
        for _ in range(10):
            params = random_params(rng)
            powers = random_powers(rng, rng.randrange(1, 30))
            app_work = rng.uniform(0.5, 5e4)
            prefixes = service_throughput_prefixes(params, powers, app_work)
            for k in range(1, len(powers) + 1):
                reference = service_throughput(
                    params, powers[:k], [app_work] * k
                )
                assert prefixes[k - 1] == pytest.approx(
                    reference, rel=1e-12
                )

    def test_rejects_bad_inputs(self, backend):
        with pytest.raises(ParameterError):
            agent_sched_throughput_many(DEFAULT_PARAMS, [100.0], 0)
        with pytest.raises(ParameterError):
            server_sched_throughput_many(DEFAULT_PARAMS, [0.0])
        with pytest.raises(PlanningError):
            # PlanningError, like the scalar supported_children.
            supported_children_many(DEFAULT_PARAMS, [100.0], 0.0)
        with pytest.raises(ParameterError):
            agent_sched_throughput_many(DEFAULT_PARAMS, [100.0, 50.0], [1])
        with pytest.raises(ParameterError):
            service_throughput_prefixes(DEFAULT_PARAMS, [100.0], -1.0)


class TestNodeArrays:
    def test_slot_total_matches_scalar_sum(self, backend):
        rng = random.Random(29)
        for _ in range(15):
            params = random_params(rng)
            powers = sorted(random_powers(rng, 50), reverse=True)
            arrays = NodeArrays(params, powers)
            n = len(powers)
            fastest = agent_sched_throughput(params, powers[0], 1)
            for scale in (1.0, 0.2, 1e-3):
                target = fastest * scale
                lo, hi = 3, 41
                total = arrays.slot_total(lo, hi, target, n)
                reference = sum(
                    min(supported_children(params, p, target), n)
                    for p in powers[lo:hi]
                )
                # Early-exit paths may stop once the clip budget is blown;
                # every caller clamps to the budget, so totals only have
                # to agree below it.
                assert total == reference or (total > n and reference > n)

    def test_rate_arrays_match_scalar(self, backend):
        rng = random.Random(31)
        params = random_params(rng)
        powers = sorted(random_powers(rng, 30), reverse=True)
        arrays = NodeArrays(params, powers)
        for i, p in enumerate(powers):
            assert float(arrays.sched_deg1[i]) == agent_sched_throughput(
                params, p, 1
            )
            assert float(arrays.sched_deg2[i]) == agent_sched_throughput(
                params, p, 2
            )
            assert float(arrays.server_rate[i]) == server_sched_throughput(
                params, p
            )


class TestHierarchyEvaluator:
    def hierarchies(self):
        pool = NodePool.uniform_random(40, low=50, high=500, seed=3)
        yield star_deployment(pool)
        yield balanced_deployment(pool, 4)
        plan = HeuristicPlanner(DEFAULT_PARAMS).plan(pool, dgemm_mflop(200))
        yield plan.hierarchy

    def test_equals_cold_evaluation(self):
        evaluator = HierarchyEvaluator(DEFAULT_PARAMS)
        for hierarchy in self.hierarchies():
            for app_work in (dgemm_mflop(100), dgemm_mflop(310)):
                cold = hierarchy_throughput(
                    hierarchy, DEFAULT_PARAMS, app_work
                )
                for _ in range(2):  # second pass exercises warm caches
                    warm = evaluator.evaluate(hierarchy, app_work)
                    assert warm.throughput == cold.throughput
                    assert warm.sched == cold.sched
                    assert warm.service == cold.service
                    assert warm.bottleneck == cold.bottleneck
                    assert warm.limiting_node == cold.limiting_node
                    assert dict(warm.node_rates) == dict(cold.node_rates)

    def test_caches_fill_and_hit(self):
        evaluator = HierarchyEvaluator(DEFAULT_PARAMS)
        pool = NodePool.homogeneous(30, 265.0)
        hierarchy = balanced_deployment(pool, 3)
        evaluator.evaluate(hierarchy, dgemm_mflop(100))
        info = evaluator.cache_info()
        # Homogeneous pool: one server rate, few distinct agent shapes.
        assert info["server_rates"] == 1
        assert 1 <= info["agent_rates"] <= 3
        assert info["service_rates"] == 1

    def test_no_servers_rejected(self):
        from repro.core.hierarchy import Hierarchy

        lonely = Hierarchy()
        lonely.set_root("a", 100.0)
        with pytest.raises(ParameterError):
            HierarchyEvaluator(DEFAULT_PARAMS).evaluate(lonely, 100.0)


class TestPlannerBackendParity:
    """The planner output is bit-identical on the NumPy and Python paths."""

    @pytest.mark.skipif(not kernels.HAVE_NUMPY, reason="NumPy unavailable")
    @pytest.mark.parametrize("n,seed", [(24, 0), (90, 4), (201, 7)])
    def test_fixed_point_plan_identical(self, monkeypatch, n, seed):
        pool = NodePool.uniform_random(n, low=80, high=400, seed=seed)
        app_work = dgemm_mflop(310)
        vec = HeuristicPlanner(DEFAULT_PARAMS).plan(pool, app_work)
        monkeypatch.setattr(kernels, "_USE_NUMPY", False)
        scalar = HeuristicPlanner(DEFAULT_PARAMS).plan(pool, app_work)
        assert vec.report.throughput == scalar.report.throughput
        assert vec.report.sched == scalar.report.sched
        assert vec.report.service == scalar.report.service
        assert dict(vec.report.node_rates) == dict(scalar.report.node_rates)
        assert sorted(
            (str(x), str(vec.hierarchy.parent(x))) for x in vec.hierarchy
        ) == sorted(
            (str(x), str(scalar.hierarchy.parent(x)))
            for x in scalar.hierarchy
        )
