"""Simulated middleware: agents, servers, clients, assembled systems."""

import pytest

from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.middleware.client import ClosedLoopClient
from repro.middleware.system import MiddlewareSystem
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


@pytest.fixture
def p() -> ModelParams:
    return ModelParams()


def star(n_servers: int, power: float = 265.0) -> Hierarchy:
    h = Hierarchy()
    h.set_root("agent", power)
    for i in range(n_servers):
        h.add_server(f"s{i}", power, "agent")
    return h


def two_level() -> Hierarchy:
    h = Hierarchy()
    h.set_root("root", 265.0)
    h.add_agent("mid", 265.0, "root")
    h.add_server("s0", 265.0, "mid")
    h.add_server("s1", 265.0, "mid")
    h.add_server("s2", 265.0, "root")
    return h


class TestRequestLifecycle:
    def test_single_request_completes(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(2), p, app_work=1.0)
        done = []
        request = system.submit("client", on_complete=done.append)
        sim.run()
        assert done == [request]
        assert request.is_complete
        assert request.selected_server in ("s0", "s1")
        assert request.scheduled_at is not None
        assert request.completed_at >= request.scheduled_at >= request.submitted_at

    def test_latency_decomposition(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(1), p, app_work=16.0)
        done = []
        system.submit("client", on_complete=done.append)
        sim.run()
        request = done[0]
        assert request.total_latency == pytest.approx(
            request.scheduling_latency + request.service_latency
        )
        # Service latency must dominate for a 16 MFlop request.
        assert request.service_latency > request.scheduling_latency

    def test_schedule_only_phase(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(3), p, app_work=1.0)
        seen = []
        system.submit_schedule_only("client", on_scheduled=seen.append)
        sim.run()
        assert len(seen) == 1
        assert seen[0].selected_server is not None
        assert seen[0].completed_at is None  # no service phase
        assert system.total_completed() == 0

    def test_multilevel_hierarchy_routes_to_leaves(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, two_level(), p, app_work=1.0)
        done = []
        for _ in range(30):
            system.submit("client", on_complete=done.append)
        sim.run()
        assert len(done) == 30
        served = {r.selected_server for r in done}
        assert served <= {"s0", "s1", "s2"}
        # All three servers should see work under concurrent load.
        assert len(served) >= 2

    def test_per_server_app_work(self, p):
        sim = Simulator()
        system = MiddlewareSystem(
            sim, star(2), p, app_work={"s0": 1.0, "s1": 5.0}
        )
        assert system.servers["s0"].app_work == 1.0
        assert system.servers["s1"].app_work == 5.0


class TestSelection:
    def test_idle_servers_share_load(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(4), p, app_work=16.0, seed=1)
        clients = [ClosedLoopClient(system, f"c{i}") for i in range(30)]
        for i, c in enumerate(clients):
            sim.schedule(i * 0.01, c.start)
        sim.run_until(10.0)
        counts = list(system.service_counts().values())
        assert min(counts) > 0.5 * max(counts)

    def test_faster_server_serves_more(self, p):
        h = Hierarchy()
        h.set_root("agent", 265.0)
        h.add_server("fast", 400.0, "agent")
        h.add_server("slow", 100.0, "agent")
        sim = Simulator()
        system = MiddlewareSystem(sim, h, p, app_work=16.0, seed=1)
        clients = [ClosedLoopClient(system, f"c{i}") for i in range(20)]
        for i, c in enumerate(clients):
            sim.schedule(i * 0.01, c.start)
        sim.run_until(10.0)
        counts = system.service_counts()
        assert counts["fast"] > counts["slow"]

    def test_selection_deterministic_per_seed(self, p):
        def run(seed: int) -> list[int]:
            sim = Simulator()
            system = MiddlewareSystem(sim, star(3), p, app_work=4.0, seed=seed)
            clients = [ClosedLoopClient(system, f"c{i}") for i in range(10)]
            for i, c in enumerate(clients):
                sim.schedule(i * 0.01, c.start)
            sim.run_until(5.0)
            return list(system.service_counts().values())

        assert run(42) == run(42)


class TestClosedLoopClient:
    def test_back_to_back_requests(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(1), p, app_work=1.0)
        client = ClosedLoopClient(system, "c0")
        client.start()
        sim.run_until(2.0)
        client.stop()
        sim.run()
        assert client.completed > 10
        assert not client.active

    def test_think_time_slows_client(self, p):
        def completions(think: float) -> int:
            sim = Simulator()
            system = MiddlewareSystem(sim, star(1), p, app_work=1.0)
            client = ClosedLoopClient(system, "c0", think_time=think)
            client.start()
            sim.run_until(5.0)
            return client.completed

        assert completions(0.5) < completions(0.0)

    def test_start_idempotent(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(1), p, app_work=1.0)
        client = ClosedLoopClient(system, "c0")
        client.start()
        client.start()
        sim.run_until(1.0)
        # One request in flight at a time: completions track one loop.
        assert client.completed >= 1


class TestObservability:
    def test_utilization_report_covers_all_nodes(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, two_level(), p, app_work=4.0)
        client = ClosedLoopClient(system, "c0")
        client.start()
        sim.run_until(3.0)
        report = system.utilization_report()
        assert set(report) == {"root", "mid", "s0", "s1", "s2"}
        assert all(0.0 <= u <= 1.0 for u in report.values())

    def test_bottleneck_is_busiest(self, p):
        sim = Simulator()
        system = MiddlewareSystem(sim, star(1), p, app_work=16.0)
        client = ClosedLoopClient(system, "c0")
        client.start()
        sim.run_until(5.0)
        node, util = system.bottleneck()
        assert node == "s0"  # service-bound: the server is the hot spot
        assert util > 0.5

    def test_trace_wiring(self, p):
        sim = Simulator()
        trace = TraceRecorder()
        system = MiddlewareSystem(sim, star(1), p, app_work=1.0, trace=trace)
        system.submit("client", on_complete=lambda r: None)
        sim.run()
        kinds = {r.kind for r in trace}
        assert {"msg_recv", "msg_sent", "compute"} <= kinds


class TestSchedulingRaces:
    """The two transparent-resubmit paths the failure layer leans on."""

    def test_zero_route_round_resubmits_until_a_server_returns(self, p):
        # Partition every server: scheduling rounds find no route and
        # must resubmit (paying a fresh round trip each time) until a
        # heal brings a server back — then exactly one completion fires.
        sim = Simulator()
        system = MiddlewareSystem(sim, star(2), p, app_work=1.0, seed=1)
        system.partition("s0")
        system.partition("s1")
        done, rounds = [], []
        system.submit(
            "client", on_complete=done.append, on_scheduled=rounds.append
        )
        sim.run_until(0.01)
        assert done == []
        assert len(rounds) > 1  # kept retrying, never gave up
        assert all(r.selected_server is None for r in rounds)
        system.heal("s0")
        sim.run()
        assert len(done) == 1
        assert done[0].selected_server == "s0"
        assert rounds[-1].selected_server == "s0"
        assert system.total_completed() == 1
        assert system.lost_conversations == 0

    def test_service_race_resubmits_when_selected_server_died(self, p):
        # Measure when the scheduling reply lands on a clean same-seed
        # run, then crash the selected server inside the merge->delivery
        # send window: the reply names a dead server, and _start_service
        # must transparently reschedule through the survivors.
        def clean():
            sim = Simulator()
            system = MiddlewareSystem(sim, star(2), p, app_work=1.0, seed=1)
            done = []
            system.submit("client", on_complete=done.append)
            sim.run()
            return done[0]

        reference = clean()
        epsilon = p.agent_sizes.srep / p.bandwidth / 2
        sim = Simulator()
        system = MiddlewareSystem(sim, star(2), p, app_work=1.0, seed=1)
        done, rounds = [], []
        system.submit(
            "client", on_complete=done.append, on_scheduled=rounds.append
        )
        sim.run_until(reference.scheduled_at - epsilon)
        assert done == []  # reply still in flight
        system.fail_server(reference.selected_server)
        sim.run()
        assert len(done) == 1
        survivor = ({"s0", "s1"} - {reference.selected_server}).pop()
        assert done[0].selected_server == survivor
        # First round named the dead server, the retry round rescheduled.
        assert len(rounds) == 2
        assert rounds[0].selected_server == reference.selected_server
        assert rounds[1].selected_server == survivor
        assert system.total_completed() == 1
        assert system.lost_conversations == 0
