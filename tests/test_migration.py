"""Subtree-granular migration: plans, live middleware surgery, the loop.

The core property: applying a :class:`MigrationPlan` to the source tree
yields a tree identical to the target hierarchy, whatever pair of valid
deployments is diffed — planner outputs across demand levels, improve
chains, random structural edits, cyclic swaps, and the restart/cold
fallbacks.  On top of that: the middleware's incremental surgery must
leave a live system wired exactly like a fresh build of the target, and
the control loop's two migration modes must stay deterministic and
account their downtime per step.
"""

import random

import pytest

from repro.api import PlanRequest, PlanningSession
from repro.control import MigrationCostModel, constant, piecewise
from repro.core.hierarchy import Hierarchy, Role
from repro.core.params import DEFAULT_PARAMS
from repro.core.registry import REGISTRY
from repro.deploy.migration import (
    MigrationPlan,
    hierarchies_equal,
    plan_migration,
)
from repro.errors import SimulationError
from repro.extensions.redeploy import improve_deployment
from repro.middleware.client import ClosedLoopClient
from repro.middleware.system import MiddlewareSystem
from repro.platforms.pool import NodePool
from repro.sim.engine import Simulator
from repro.units import dgemm_mflop

WORK = dgemm_mflop(200)


def planned(pool, demand=None, seed=0):
    return REGISTRY.plan(
        PlanRequest(pool=pool, app_work=WORK, demand=demand, seed=seed)
    ).hierarchy


def random_valid_mutation(tree: Hierarchy, rng: random.Random) -> Hierarchy:
    """One random structural edit that keeps the tree strictly valid."""
    for _ in range(20):
        trial = tree.copy()
        op = rng.choice(("remove", "add", "reattach", "promote"))
        try:
            if op == "remove":
                server = rng.choice(trial.servers)
                trial.remove_leaf(server)
            elif op == "add":
                agent = rng.choice(trial.agents)
                trial.add_server(
                    f"new-{rng.randrange(10_000)}", 100.0 + rng.random(),
                    agent,
                )
            elif op == "reattach":
                node = rng.choice(
                    [n for n in trial.nodes if n != trial.root]
                )
                target = rng.choice(trial.agents)
                if target not in trial.subtree(node):
                    trial.reattach(node, target)
            else:
                server = rng.choice(trial.servers)
                trial.promote(server)
                parent = trial.parent(server)
                siblings = [
                    c
                    for c in trial.children(parent)
                    if c != server and trial.role(c) is Role.SERVER
                ]
                for sibling in siblings[:2]:
                    trial.reattach(sibling, server)
            trial.validate(strict=True)
            return trial
        except Exception:
            continue
    return tree.copy()


class TestPlanEquivalence:
    """plan_migration(a, b).apply(a) == b, across diverse pairs."""

    def assert_equivalent(self, old, new):
        plan = plan_migration(old, new)
        result = plan.apply(old)
        assert hierarchies_equal(result, new), (
            f"{plan.describe()}\nfrom:\n{old.describe()}\n"
            f"to:\n{new.describe()}\ngot:\n{result.describe()}"
        )
        return plan

    def test_planner_outputs_across_demand_levels(self):
        pool = NodePool.uniform_random(14, low=80, high=400, seed=11)
        trees = [planned(pool)] + [
            planned(pool, demand=d) for d in (30.0, 60.0, 120.0, 240.0)
        ]
        for old in trees:
            for new in trees:
                self.assert_equivalent(old, new)

    def test_improve_chain_is_incremental_growth(self):
        pool = NodePool.uniform_random(16, low=80, high=400, seed=7)
        base = planned(pool.take(6), seed=3)
        deployed = {str(n) for n in base}
        spares = [n for n in pool if n.name not in deployed]
        improved = improve_deployment(
            base, spares, DEFAULT_PARAMS, WORK
        ).hierarchy
        plan = self.assert_equivalent(base, improved)
        assert plan.is_live
        # A pure capacity growth drains nothing.
        if all(
            region.root == "+" for region in plan.regions
        ):
            assert plan.drained_total == 0

    def test_random_mutation_walks(self):
        rng = random.Random(42)
        pool = NodePool.uniform_random(12, low=80, high=400, seed=5)
        current = planned(pool)
        for _ in range(30):
            mutated = random_valid_mutation(current, rng)
            self.assert_equivalent(current, mutated)
            self.assert_equivalent(mutated, current)
            current = mutated

    def test_cyclic_ancestor_swap(self):
        old = Hierarchy()
        old.set_root("r", 300.0)
        old.add_agent("A", 250.0, "r")
        old.add_agent("B", 240.0, "A")
        old.add_server("s1", 200.0, "A")
        old.add_server("s2", 190.0, "B")
        old.add_server("s3", 180.0, "B")
        old.validate(strict=True)
        new = Hierarchy()
        new.set_root("r", 300.0)
        new.add_agent("B", 240.0, "r")
        new.add_agent("A", 250.0, "B")
        new.add_server("s2", 190.0, "B")
        new.add_server("s1", 200.0, "A")
        new.add_server("s3", 180.0, "A")
        new.validate(strict=True)
        plan = self.assert_equivalent(old, new)
        assert plan.is_live  # orderable without a full restart

    def test_root_change_falls_back_to_restart(self):
        pool = NodePool.uniform_random(8, low=80, high=400, seed=2)
        old = planned(pool)
        new = Hierarchy()
        nodes = list(old)
        # Same node set, different root: unrealizable incrementally.
        new.set_root(nodes[1], old.power(nodes[1]))
        for node in nodes:
            if node == nodes[1]:
                continue
            new.add_server(node, old.power(node), nodes[1])
        new.validate(strict=True)
        plan = self.assert_equivalent(old, new)
        assert plan.kind == "restart"
        assert not plan.is_live

    def test_power_change_falls_back_to_restart(self):
        pool = NodePool.homogeneous(6, 265.0)
        old = planned(pool)
        new = old.copy()
        server = new.servers[0]
        parent = new.parent(server)
        new.remove_leaf(server)
        new.add_server(server, 999.0, parent)
        plan = plan_migration(old, new)
        assert plan.kind == "restart"
        assert hierarchies_equal(plan.apply(old), new)

    def test_cold_start_plan(self):
        pool = NodePool.homogeneous(5, 265.0)
        tree = planned(pool)
        plan = plan_migration(None, tree)
        assert plan.kind == "cold"
        assert hierarchies_equal(plan.apply(None), tree)

    def test_noop_plan_is_empty(self):
        pool = NodePool.homogeneous(6, 265.0)
        tree = planned(pool)
        plan = plan_migration(tree, tree.copy())
        assert plan.is_noop
        assert plan.touched == 0
        assert hierarchies_equal(plan.apply(tree), tree)


class TestLiveSystemSurgery:
    """Incremental middleware ops leave the system wired like a fresh build."""

    @staticmethod
    def _wiring(system):
        return {
            name: [child.name for child in agent.children]
            for name, agent in system.agents.items()
        }

    def migrate_live(self, old, new, drive_seconds=10.0, clients=3):
        sim = Simulator()
        system = MiddlewareSystem(sim, old, DEFAULT_PARAMS, WORK, seed=3)
        fleet = [
            ClosedLoopClient(system, f"c{i}") for i in range(clients)
        ]
        for client in fleet:
            client.start()
        sim.run_until(drive_seconds)
        plan = plan_migration(old, new)
        assert plan.is_live
        for region in plan.regions:
            drained = tuple(str(n) for n in region.drained)
            if drained:
                system.unlink(str(region.root))
                sim.run_until_condition(
                    sim.now + 0.25,
                    lambda: not system.region_busy(drained),
                )
            system.apply_migration(region.steps)
            if drained and region.root in new:
                parent = new.parent(region.root)
                if parent is not None:
                    system.ensure_linked(str(region.root), str(parent))
        system.complete_migration(new)
        return sim, system, fleet

    def test_migrated_wiring_matches_fresh_build(self):
        pool = NodePool.uniform_random(14, low=80, high=400, seed=11)
        old = planned(pool)
        new = planned(pool, demand=60.0)
        sim, migrated, fleet = self.migrate_live(old, new)
        fresh = MiddlewareSystem(
            Simulator(), new, DEFAULT_PARAMS, WORK, seed=3
        )
        assert self._wiring(migrated) == self._wiring(fresh)
        assert set(migrated.servers) == set(fresh.servers)
        assert migrated.hierarchy is new
        # The platform still serves after surgery: clients keep looping.
        before = sum(client.completed for client in fleet)
        sim.run_until(sim.now + 10.0)
        assert sum(client.completed for client in fleet) > before

    def test_unlink_root_is_rejected(self):
        pool = NodePool.homogeneous(4, 265.0)
        tree = planned(pool)
        system = MiddlewareSystem(
            Simulator(), tree, DEFAULT_PARAMS, WORK
        )
        from repro.errors import DeploymentError

        with pytest.raises(DeploymentError, match="root"):
            system.unlink(str(tree.root))

    def test_in_flight_requests_survive_rehoming(self):
        # Conversations route replies to capture-time origins, so a
        # migration mid-request cannot strand a merge: every started
        # request eventually completes or is resubmitted, and the
        # client fleet keeps making progress straight through surgery.
        pool = NodePool.uniform_random(10, low=80, high=400, seed=4)
        old = planned(pool)
        new = planned(pool, demand=40.0)
        sim, system, fleet = self.migrate_live(
            old, new, drive_seconds=5.0, clients=8
        )
        completed_at_migration = sum(c.completed for c in fleet)
        sim.run_until(sim.now + 20.0)
        assert sum(c.completed for c in fleet) > completed_at_migration
        # No agent is left holding a merge forever once traffic stops.
        for client in fleet:
            client.stop()
        sim.run_until(sim.now + 30.0)
        for agent in system.agents.values():
            assert agent.in_flight == 0


class TestEngineConditionRuns:
    def test_condition_stops_early_and_preserves_order(self):
        fired = []
        sim = Simulator()
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        met = sim.run_until_condition(10.0, lambda: len(fired) >= 2)
        assert met is True
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0
        # The remaining events fire in the same order afterwards.
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_deadline_reached_behaves_like_run_until(self):
        fired = []
        sim = Simulator()
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        met = sim.run_until_condition(2.0, lambda: False)
        assert met is False
        assert sim.now == 2.0
        assert fired == [1]

    def test_condition_already_true_is_a_noop(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run_until_condition(5.0, lambda: True) is True
        assert sim.now == 0.0
        assert sim.pending == 1

    def test_past_deadline_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.run_until_condition(1.0, lambda: True)


class TestLoopMigrationModes:
    """Downtime accounting and determinism of the two mechanisms."""

    @staticmethod
    def run_mode(mode, **overrides):
        session = PlanningSession()
        defaults = dict(
            trace=piecewise([(0.0, 20), (8.0, 3)]),
            policy="reactive",
            policy_options={"hysteresis": 1, "cooldown": 1},
            epochs=10,
            epoch_duration=2.0,
            initial_fraction=0.4,
            migration=mode,
            seed=5,
        )
        defaults.update(overrides)
        return session.control_run(
            NodePool.uniform_random(10, low=80, high=400, seed=7),
            WORK,
            **defaults,
        )

    def test_same_seed_identical_timeline_per_mode(self):
        for mode in ("live", "restart"):
            first = self.run_mode(mode)
            second = self.run_mode(mode)
            assert first == second
            assert first.migration == mode
            assert first.redeploys >= 1

    def test_restart_steps_cover_whole_platform(self):
        timeline = self.run_mode("restart")
        applied = [r for r in timeline.records if r.applied]
        assert applied
        for record in applied:
            assert len(record.migration_steps) == 1
            step = record.migration_steps[0]
            assert step.op == "restart"
            assert step.drained_nodes == step.deployed_nodes
            assert step.downtime == step.seconds
            assert record.migration_seconds == pytest.approx(step.seconds)

    def test_live_downtime_itemized_and_weighted(self):
        timeline = self.run_mode("live")
        applied = [r for r in timeline.records if r.applied]
        assert applied
        saw_drain = False
        for record in applied:
            assert record.migration_steps
            assert record.migration_seconds == pytest.approx(
                sum(step.downtime for step in record.migration_steps)
            )
            for step in record.migration_steps:
                assert step.op in ("drain", "grow")
                if step.op == "grow":
                    assert step.drained_nodes == 0
                    assert step.downtime == 0.0
                else:
                    saw_drain = True
                    assert 0 < step.drained_nodes <= step.deployed_nodes
                    assert step.downtime <= step.seconds
        assert saw_drain  # the shrink produced at least one real drain
        # Per-subtree drains cost far less than full restarts.
        restart = self.run_mode("restart")
        assert timeline.migration_downtime < restart.migration_downtime

    def test_unknown_migration_mode_rejected(self):
        from repro.errors import ControlError

        with pytest.raises(ControlError, match="migration mode"):
            self.run_mode("blue-green")


class TestLiveCostPricing:
    def test_live_outage_prices_below_restart(self):
        pool = NodePool.uniform_random(12, low=80, high=400, seed=9)
        old = planned(pool, demand=60.0)
        new = planned(pool)
        plan = plan_migration(old, new)
        assert plan.is_live
        model = MigrationCostModel()
        live = model.plan_outage_seconds(plan, DEFAULT_PARAMS)
        restart = model.cost_seconds(old, new, DEFAULT_PARAMS)
        assert live < restart

    def test_non_live_plans_price_like_cost_seconds(self):
        # Restart-kind and cold plans are stop-the-world rebuilds, so
        # the outage price must agree with the legacy restart price.
        pool = NodePool.uniform_random(8, low=80, high=400, seed=2)
        tree = planned(pool)
        model = MigrationCostModel()
        cold = plan_migration(None, tree)
        assert cold.kind == "cold"
        assert model.plan_outage_seconds(
            cold, DEFAULT_PARAMS
        ) == pytest.approx(model.cost_seconds(None, tree, DEFAULT_PARAMS))

    def test_growth_regions_price_zero_outage(self):
        grown = Hierarchy()
        grown.set_root("r", 300.0)
        grown.add_server("s1", 200.0, "r")
        grown.add_server("s2", 210.0, "r")
        target = grown.copy()
        target.add_server("s3", 220.0, "r")
        plan = plan_migration(grown, target)
        assert plan.is_live
        assert plan.drained_total == 0
        model = MigrationCostModel()
        assert model.plan_outage_seconds(plan, DEFAULT_PARAMS) == 0.0
