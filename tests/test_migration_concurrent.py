"""Concurrent region migration: the schedule-equivalence test battery.

The contract under test, layer by layer:

* **Plan layer** — for any pair of valid deployments,
  :meth:`MigrationPlan.concurrent_schedule` groups the plan's regions
  into dependency waves such that (a) applying the waves in order, with
  the regions *inside* a wave applied in any order, yields a tree
  identical to the serial :meth:`MigrationPlan.apply`; (b) regions
  claimed concurrent (same wave) never overlap in nodes; and (c) every
  region's ``depends_on`` providers sit in strictly earlier waves.
  Exercised over hypothesis-driven planner pairs, improve chains and
  random mutation walks.
* **Middleware layer** — a live system can hold every region of a wave
  unlinked at once (disjointness enforced), and wave-order surgery
  leaves it wired identically to a fresh build of the target.
* **Control layer** — ``ControlLoop(migration="concurrent")`` is
  bit-deterministic (same seed ⇒ identical timeline, in process and
  across ``control_sweep`` process pools), and on the ``black_friday``
  fixture beats serial live migration on the total migration window
  without serving less per measured second — with both modes ending on
  the same deployment tree.
* **Pricing layer** — :meth:`MigrationCostModel.plan_window_seconds`
  prices the concurrent schedule at or below the serial window, and
  strictly below whenever a wave holds two or more regions.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import PlanningSession
from repro.control import ControlLoop, MigrationCostModel, constant, fixture
from repro.control.monitor import WindowObservation
from repro.control.policy import (
    ControlContext,
    PredictivePolicy,
    ReactivePolicy,
)
from repro.core.hierarchy import Hierarchy
from repro.core.params import DEFAULT_PARAMS
from repro.core.throughput import hierarchy_throughput
from repro.deploy.migration import (
    apply_steps,
    hierarchies_equal,
    plan_migration,
)
from repro.errors import DeploymentError
from repro.extensions.redeploy import improve_deployment
from repro.middleware.client import ClosedLoopClient
from repro.middleware.system import MiddlewareSystem
from repro.platforms.pool import NodePool
from repro.sim.engine import Simulator
from repro.units import dgemm_mflop
from test_migration import WORK, planned, random_valid_mutation

import pytest


# --------------------------------------------------------------------- #
# schedule equivalence core


def assert_schedule_equivalent(old, new):
    """The battery's oracle: waves replay to the serial apply result."""
    plan = plan_migration(old, new)
    serial = plan.apply(old)
    waves = plan.concurrent_schedule()

    # (c) the schedule respects the dependency order: every provider
    # lives in a strictly earlier wave, and the flattened schedule is a
    # permutation of the plan's regions.
    wave_of = {
        region.root: index
        for index, wave in enumerate(waves)
        for region in wave
    }
    assert len(wave_of) == len(plan.regions)
    assert sorted(map(str, wave_of)) == sorted(
        str(region.root) for region in plan.regions
    )
    for wave_index, wave in enumerate(waves):
        for region in wave:
            for provider in region.depends_on:
                assert wave_of[provider] < wave_index, (
                    f"region {region.root} in wave {wave_index} depends "
                    f"on {provider} in wave {wave_of[provider]}"
                )

    # (b) regions claimed concurrent never overlap in nodes.  (Region
    # membership is globally disjoint by construction, so assert the
    # stronger global property — wave-mates are the special case the
    # runtime relies on.)
    seen: dict[str, object] = {}
    for region in plan.regions:
        for member in region.members:
            assert member not in seen, (
                f"node {member} owned by regions {seen[member]} "
                f"and {region.root}"
            )
            seen[member] = region.root

    # (a) wave replay, regions permuted inside each wave, is
    # tree-identical to the serial apply (and hence to the target for
    # incremental plans).
    orders = [
        lambda wave: list(wave),
        lambda wave: list(reversed(wave)),
        lambda wave: random.Random(1234 + len(wave)).sample(
            list(wave), len(wave)
        ),
    ]
    for order in orders:
        if plan.kind == "cold":
            tree = Hierarchy()
        else:
            tree = old.copy()
        for wave in waves:
            for region in order(wave):
                apply_steps(tree, region.steps)
        assert hierarchies_equal(tree, serial), (
            f"wave replay diverged from serial apply\n{plan.describe()}"
        )
    if plan.is_live:
        assert hierarchies_equal(serial, new)
    return plan


class TestScheduleEquivalenceProperties:
    """Hypothesis battery over random hierarchy pairs."""

    @given(
        size=st.integers(min_value=8, max_value=14),
        pool_seed=st.integers(min_value=0, max_value=40),
        keep=st.integers(min_value=6, max_value=14),
        demand_old=st.sampled_from([None, 30.0, 60.0, 120.0, 240.0]),
        demand_new=st.sampled_from([None, 30.0, 60.0, 120.0, 240.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_planner_pairs(self, size, pool_seed, keep, demand_old, demand_new):
        pool = NodePool.uniform_random(size, low=60, high=400, seed=pool_seed)
        old = planned(pool, demand=demand_old)
        new = planned(pool.take(min(size, keep)), demand=demand_new)
        assert_schedule_equivalent(old, new)
        assert_schedule_equivalent(new, old)

    @given(walk_seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_mutation_walks(self, walk_seed):
        rng = random.Random(walk_seed)
        pool = NodePool.uniform_random(12, low=80, high=400, seed=5)
        current = planned(pool)
        for _ in range(6):
            mutated = random_valid_mutation(current, rng)
            assert_schedule_equivalent(current, mutated)
            assert_schedule_equivalent(mutated, current)
            current = mutated

    def test_improve_chain(self):
        pool = NodePool.uniform_random(16, low=80, high=400, seed=7)
        base = planned(pool.take(6), seed=3)
        deployed = {str(node) for node in base}
        spares = [node for node in pool if node.name not in deployed]
        improved = improve_deployment(
            base, spares, DEFAULT_PARAMS, WORK
        ).hierarchy
        assert_schedule_equivalent(base, improved)
        assert_schedule_equivalent(improved, base)

    def test_long_random_walk(self):
        rng = random.Random(42)
        pool = NodePool.uniform_random(12, low=80, high=400, seed=5)
        current = planned(pool)
        for _ in range(30):
            mutated = random_valid_mutation(current, rng)
            assert_schedule_equivalent(current, mutated)
            current = mutated

    def test_noop_plan_has_empty_schedule(self):
        pool = NodePool.homogeneous(6, 265.0)
        tree = planned(pool)
        plan = plan_migration(tree, tree.copy())
        assert plan.concurrent_schedule() == ()

    def test_restart_plan_is_one_single_region_wave(self):
        pool = NodePool.homogeneous(6, 265.0)
        old = planned(pool)
        new = old.copy()
        server = new.servers[0]
        parent = new.parent(server)
        new.remove_leaf(server)
        new.add_server(server, 999.0, parent)
        plan = plan_migration(old, new)
        assert plan.kind == "restart"
        waves = plan.concurrent_schedule()
        assert len(waves) == 1 and len(waves[0]) == 1
        assert_schedule_equivalent(old, new)

    def test_growth_provider_forces_a_later_wave(self):
        # A drained region moving a subtree under a freshly grown agent
        # must wait for the growth wave: the "+" region is a provider.
        old = Hierarchy()
        old.set_root("r", 300.0)
        old.add_agent("A", 250.0, "r")
        old.add_server("s1", 200.0, "A")
        old.add_server("s2", 190.0, "A")
        old.add_server("s3", 180.0, "r")
        old.validate(strict=True)
        new = Hierarchy()
        new.set_root("r", 300.0)
        new.add_agent("B", 260.0, "r")  # grown under the untouched root
        new.add_agent("A", 250.0, "B")  # moved under the new agent
        new.add_server("s1", 200.0, "A")
        new.add_server("s2", 190.0, "A")
        new.add_server("s3", 180.0, "B")
        new.validate(strict=True)
        plan = assert_schedule_equivalent(old, new)
        assert plan.is_live
        growth = [r for r in plan.regions if r.root == "+"]
        assert growth, "expected a drain-free growth region"
        dependent = [r for r in plan.regions if "+" in r.depends_on]
        assert dependent, "expected a region depending on the growth wave"
        waves = plan.concurrent_schedule()
        assert any(r.root == "+" for r in waves[0])
        assert all(r.root != "+" for wave in waves[1:] for r in wave)


# --------------------------------------------------------------------- #
# middleware layer


class TestConcurrentSurgery:
    @staticmethod
    def _wiring(system):
        return {
            name: [child.name for child in agent.children]
            for name, agent in system.agents.items()
        }

    def test_wave_surgery_matches_fresh_build(self):
        pool = NodePool.uniform_random(14, low=80, high=400, seed=11)
        old = planned(pool)
        new = planned(pool, demand=60.0)
        plan = plan_migration(old, new)
        assert plan.is_live and len(plan.regions) >= 1

        sim = Simulator()
        system = MiddlewareSystem(sim, old, DEFAULT_PARAMS, WORK, seed=1)
        clients = [
            ClosedLoopClient(system, f"c{i:02d}") for i in range(3)
        ]
        for client in clients:
            client.start()
        sim.run_until(5.0)

        for wave in plan.concurrent_schedule():
            regions = [
                (region, tuple(str(n) for n in region.drained))
                for region in wave
            ]
            # Every drained region of the wave goes dark at once.
            for region, drained in regions:
                if drained:
                    system.unlink(str(region.root), drained)
            sim.run_until_condition(
                sim.now + 0.25,
                lambda: not any(
                    system.region_busy(drained)
                    for _, drained in regions
                    if drained
                ),
            )
            # Regions of one wave commute: apply them in reverse order.
            for region, drained in reversed(regions):
                system.apply_migration(region.steps)
                if drained and region.root in new:
                    parent = new.parent(region.root)
                    if parent is not None:
                        system.ensure_linked(str(region.root), str(parent))
        system.complete_migration(new)
        for client in clients:
            client.stop()
        sim.run()

        fresh = MiddlewareSystem(Simulator(), new, DEFAULT_PARAMS, WORK)
        assert self._wiring(system) == self._wiring(fresh)
        assert hierarchies_equal(system.hierarchy, new)

    def test_multiple_disjoint_subtrees_dark_at_once(self):
        tree = Hierarchy()
        tree.set_root("r", 300.0)
        for name in ("A", "B"):
            tree.add_agent(name, 250.0, "r")
        tree.add_server("a1", 200.0, "A")
        tree.add_server("a2", 195.0, "A")
        tree.add_server("b1", 190.0, "B")
        tree.add_server("b2", 185.0, "B")
        tree.validate(strict=True)
        system = MiddlewareSystem(Simulator(), tree, DEFAULT_PARAMS, WORK)
        system.unlink("A")
        system.unlink("B")
        assert set(system.unlinked_subtrees) == {"A", "B"}
        assert system.unlinked_subtrees["A"] == {"A", "a1", "a2"}
        # Both predicates see their own (now idle) region as quiet.
        assert not system.region_busy_predicate(("A", "a1", "a2"))()
        assert not system.region_busy_predicate(("B", "b1", "b2"))()

    def test_overlapping_unlink_is_rejected(self):
        tree = Hierarchy()
        tree.set_root("r", 300.0)
        tree.add_agent("A", 250.0, "r")
        tree.add_agent("B", 240.0, "A")
        tree.add_server("s1", 200.0, "B")
        tree.add_server("s2", 190.0, "B")
        tree.add_server("s3", 180.0, "A")
        tree.validate(strict=True)
        system = MiddlewareSystem(Simulator(), tree, DEFAULT_PARAMS, WORK)
        system.unlink("A")  # members include B's whole subtree
        with pytest.raises(DeploymentError, match="disjoint"):
            system.unlink("B")
        with pytest.raises(DeploymentError, match="already dark"):
            system.unlink("A")
        # Relinking clears the registration; the subtree can drain again.
        system.ensure_linked("A", "r")
        assert system.unlinked_subtrees == {}
        system.unlink("B")


# --------------------------------------------------------------------- #
# pricing layer


class TestConcurrentPricing:
    def test_concurrent_window_never_exceeds_serial(self):
        model = MigrationCostModel()
        pool = NodePool.uniform_random(14, low=80, high=400, seed=3)
        trees = [planned(pool)] + [
            planned(pool, demand=d) for d in (30.0, 60.0, 120.0)
        ]
        for old in trees:
            for new in trees:
                plan = plan_migration(old, new)
                if plan.is_noop:
                    continue
                serial = model.plan_window_seconds(plan, DEFAULT_PARAMS)
                concurrent = model.plan_window_seconds(
                    plan, DEFAULT_PARAMS, concurrent=True
                )
                assert concurrent <= serial + 1e-12
                widest = max(
                    len(wave) for wave in plan.concurrent_schedule()
                )
                if plan.is_live and widest >= 2:
                    assert concurrent < serial

    def test_non_live_plans_price_one_restart_window(self):
        model = MigrationCostModel()
        pool = NodePool.homogeneous(6, 265.0)
        old = planned(pool)
        new = old.copy()
        server = new.servers[0]
        parent = new.parent(server)
        new.remove_leaf(server)
        new.add_server(server, 999.0, parent)
        plan = plan_migration(old, new)
        assert not plan.is_live
        serial = model.plan_window_seconds(plan, DEFAULT_PARAMS)
        concurrent = model.plan_window_seconds(
            plan, DEFAULT_PARAMS, concurrent=True
        )
        assert serial == concurrent
        assert serial == pytest.approx(
            model.cost_seconds(old, new, DEFAULT_PARAMS)
        )


# --------------------------------------------------------------------- #
# control layer


def concurrent_loop(**overrides):
    options = dict(
        policy="reactive",
        policy_options={"hysteresis": 1, "cooldown": 1},
        epochs=20,
        epoch_duration=4.0,
        initial_fraction=0.4,
        migration="concurrent",
        seed=3,
    )
    options.update(overrides)
    pool = options.pop(
        "pool", NodePool.uniform_random(16, low=80, high=400, seed=7)
    )
    trace = options.pop("trace", fixture("black_friday"))
    return ControlLoop(pool, dgemm_mflop(200), trace, **options)


class TestConcurrentDeterminism:
    def test_same_seed_bit_identical_timelines(self):
        first = concurrent_loop(epochs=12).run()
        second = concurrent_loop(epochs=12).run()
        assert first == second
        assert first.records == second.records
        assert first.redeploys >= 1  # the run actually migrated

    def test_sweep_serial_matches_process_pool(self):
        session = PlanningSession()
        pool = NodePool.uniform_random(12, low=80, high=400, seed=7)
        kwargs = dict(
            traces=("black_friday",),
            policies=("reactive",),
            seeds=(0, 1),
            policy_options={"reactive": {"hysteresis": 1, "cooldown": 1}},
            epochs=8,
            epoch_duration=3.0,
            initial_fraction=0.4,
            migration="concurrent",
        )
        serial = session.control_sweep(
            pool, dgemm_mflop(200), parallel=False, **kwargs
        )
        pooled = session.control_sweep(
            pool, dgemm_mflop(200), parallel=True, max_workers=2, **kwargs
        )
        assert [cell.label for cell in serial] == [
            cell.label for cell in pooled
        ]
        for a, b in zip(serial, pooled):
            assert a.timeline == b.timeline


class TestConcurrentBeatsSerialLive:
    """The acceptance scenario: black_friday, identical seed/trace/policy."""

    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for mode in ("live", "concurrent"):
            loop = concurrent_loop(epochs=20, migration=mode)
            results[mode] = (loop.run(), loop.final_hierarchy)
        return results

    def test_migration_window_strictly_shorter(self, runs):
        live, concurrent = runs["live"][0], runs["concurrent"][0]
        assert live.migration_window > 0.0
        assert concurrent.migration_window < live.migration_window

    def test_served_throughput_no_worse(self, runs):
        live, concurrent = runs["live"][0], runs["concurrent"][0]
        assert concurrent.mean_served_rate >= live.mean_served_rate
        assert concurrent.served_in_epochs >= live.served_in_epochs

    def test_final_trees_identical(self, runs):
        assert hierarchies_equal(runs["live"][1], runs["concurrent"][1])

    def test_step_intervals_overlap_somewhere(self, runs):
        # The schedule is genuinely concurrent: some epoch's itemized
        # steps overlap in simulation time (sum of windows exceeds the
        # epoch's wall window).
        concurrent = runs["concurrent"][0]
        overlapped = [
            record
            for record in concurrent.records
            if len(record.migration_steps) >= 2
            and sum(s.seconds for s in record.migration_steps)
            > record.migration_window + 1e-9
        ]
        assert overlapped
        for record in overlapped:
            starts = {s.started_at for s in record.migration_steps}
            assert len(starts) < len(record.migration_steps)


# --------------------------------------------------------------------- #
# saturation restructuring


def saturated_observation(rate=200.0):
    return WindowObservation(
        index=5,
        start=20.0,
        end=24.0,
        offered=30,
        served=int(rate * 4),
        served_rate=rate,
        agent_utilization=0.99,
        server_utilization=0.97,
        busiest_node="node-00",
        busiest_utilization=1.0,
        queue_depth=64,
    )


def saturated_context(observation, capacity, pool_size, trace):
    return ControlContext(
        observations=(observation, observation),
        capacity=capacity,
        deployed_nodes=pool_size,
        pool_size=pool_size,
        spares=0,
        min_nodes=2,
        epoch_duration=4.0,
        next_start=24.0,
        trace=trace,
        demand_unit=8.0,
        redeploys=1,
        epochs_since_redeploy=5,
    )


class TestSaturationRestructuring:
    def test_reactive_proposes_restructure_at_full_occupancy(self):
        ctx = saturated_context(
            saturated_observation(), capacity=200.0, pool_size=10,
            trace=constant(30),
        )
        decision = ReactivePolicy(hysteresis=1, cooldown=1).decide(ctx)
        assert decision.action == "replan"
        assert decision.demand is None  # capacity-seeking, same nodes
        assert "restructur" in decision.reason

    def test_reactive_restructure_can_be_disabled(self):
        ctx = saturated_context(
            saturated_observation(), capacity=200.0, pool_size=10,
            trace=constant(30),
        )
        decision = ReactivePolicy(
            hysteresis=1, cooldown=1, restructure=False
        ).decide(ctx)
        assert decision.action == "hold"
        assert "pool exhausted" in decision.reason

    def test_predictive_proposes_restructure_at_full_occupancy(self):
        ctx = saturated_context(
            saturated_observation(), capacity=100.0, pool_size=10,
            trace=constant(30),
        )
        decision = PredictivePolicy(window=2, cooldown=1).decide(ctx)
        assert decision.action == "replan"
        assert decision.demand is None
        assert "restructur" in decision.reason

    def _caterpillar_over(self, pool):
        """A deliberately shape-degraded full-pool deployment: the
        strongest nodes burn in a chain of scheduling tiers, each with a
        single weak server beside the next agent — every request pays
        the full chain of hops."""
        ranked = sorted(pool, key=lambda n: -n.power)
        tree = Hierarchy()
        tree.set_root(ranked[0].name, ranked[0].power)
        agents, servers = ranked[1:9], ranked[9:]
        parent, serial = ranked[0].name, 0
        for agent in agents:
            tree.add_agent(agent.name, agent.power, parent)
            tree.add_server(
                servers[serial].name, servers[serial].power, parent
            )
            serial += 1
            parent = agent.name
        for server in servers[serial:]:
            tree.add_server(server.name, server.power, parent)
        tree.validate(strict=True)
        return tree

    def test_restructure_applies_when_shape_is_the_bottleneck(self):
        # A deep caterpillar over a big pool schedules far worse than
        # the planner's tree; the restructure decision must realize into
        # an applied same-nodes replan under concurrent pricing.
        pool = NodePool.uniform_random(40, low=60, high=400, seed=123)
        loop = concurrent_loop(pool=pool, trace=constant(50))
        star = self._caterpillar_over(pool)
        capacity = hierarchy_throughput(
            star, DEFAULT_PARAMS, dgemm_mflop(200)
        ).throughput
        decision = ReactivePolicy(hysteresis=1, cooldown=1).decide(
            saturated_context(
                saturated_observation(rate=capacity),
                capacity=capacity,
                pool_size=len(pool),
                trace=constant(50),
            )
        )
        assert decision.action == "replan" and decision.demand is None
        candidate, reason, cost, rho, plan = loop._realize(
            decision, star, [], capacity, saturated_observation(capacity)
        )
        assert candidate is not None, f"restructure vetoed: {reason}"
        assert rho > capacity
        assert {str(n) for n in candidate} <= {node.name for node in pool}
        assert plan is not None and plan.is_live

    def test_restructure_without_gain_is_a_noop(self):
        # Current tree == the planner's own full-pool plan: the replan
        # keeps the deployment, so the restructure must be a no-op.
        pool = NodePool.uniform_random(10, low=60, high=400, seed=0)
        loop = concurrent_loop(pool=pool, trace=constant(40))
        current = planned(pool, seed=3)
        capacity = hierarchy_throughput(
            current, DEFAULT_PARAMS, dgemm_mflop(200)
        ).throughput
        decision = ReactivePolicy(hysteresis=1, cooldown=1).decide(
            saturated_context(
                saturated_observation(rate=capacity),
                capacity=capacity,
                pool_size=len(pool),
                trace=constant(40),
            )
        )
        candidate, reason, _, _, _ = loop._realize(
            decision, current, [], capacity, saturated_observation(capacity)
        )
        assert candidate is None
        assert "no-op" in reason

    def test_end_to_end_restructure_reasons_surface_in_timeline(self):
        pool = NodePool.uniform_random(10, low=60, high=400, seed=0)
        timeline = concurrent_loop(
            pool=pool, trace=constant(40), epochs=10, epoch_duration=3.0,
            initial_fraction=0.5, seed=0,
        ).run()
        assert any(
            "restructur" in record.reason for record in timeline.records
        )

    def test_rejected_restructure_is_not_replanned_every_epoch(self):
        # A persistently saturated policy proposes the same demand-free
        # replan each epoch; its inputs are run constants, so the loop
        # must pay the planner once, not once per epoch.
        from repro.core.registry import REGISTRY

        class CountingRegistry:
            def __init__(self, inner):
                self.inner = inner
                self.plans = 0

            def plan(self, request):
                self.plans += 1
                return self.inner.plan(request)

            def get(self, name):
                return self.inner.get(name)

        registry = CountingRegistry(REGISTRY)
        pool = NodePool.uniform_random(10, low=60, high=400, seed=0)
        timeline = concurrent_loop(
            pool=pool, trace=constant(40), epochs=10, epoch_duration=3.0,
            initial_fraction=0.5, seed=0, registry=registry,
        ).run()
        proposals = sum(
            1 for record in timeline.records if "restructur" in record.reason
        )
        assert proposals >= 3  # the scenario proposes repeatedly...
        # ...but only the initial deployment and the first restructure
        # actually hit the planner.
        assert registry.plans == 2
