"""Model-vs-simulation convergence.

The discrete-event middleware and the closed-form model (Eq. 16) describe
the same system; under saturating load the measured steady-state rate must
converge to the analytic prediction.  These tests pin that agreement
across regimes (agent-bound, server-bound, heterogeneous, multi-level) —
it is the load-bearing property behind every figure reproduction.
"""

import pytest

from repro.analysis.experiments import run_fixed_load
from repro.core.baselines import balanced_deployment, star_deployment
from repro.core.heuristic import HeuristicPlanner
from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

PARAMS = ModelParams()


def assert_converges(
    hierarchy: Hierarchy,
    app_work: float,
    clients: int,
    rel: float = 0.06,
    duration: float = 15.0,
) -> None:
    predicted = hierarchy_throughput(hierarchy, PARAMS, app_work).throughput
    measured = run_fixed_load(
        hierarchy, PARAMS, app_work, clients=clients, duration=duration
    ).throughput
    assert measured == pytest.approx(predicted, rel=rel)


class TestServerBoundRegime:
    """Figure 4/5: DGEMM 200x200 — servers limit throughput."""

    @pytest.mark.parametrize("n_servers,clients", [(1, 20), (2, 40), (4, 60)])
    def test_star_convergence(self, n_servers, clients):
        pool = NodePool.homogeneous(n_servers + 1, 265.0)
        assert_converges(star_deployment(pool), dgemm_mflop(200), clients)

    def test_second_server_doubles_throughput(self):
        one = run_fixed_load(
            star_deployment(NodePool.homogeneous(2, 265.0)),
            PARAMS, dgemm_mflop(200), clients=30, duration=15.0,
        ).throughput
        two = run_fixed_load(
            star_deployment(NodePool.homogeneous(3, 265.0)),
            PARAMS, dgemm_mflop(200), clients=30, duration=15.0,
        ).throughput
        assert two / one == pytest.approx(2.0, rel=0.1)


class TestAgentBoundRegime:
    """Figure 2/3: DGEMM 10x10 — the agent limits throughput."""

    def test_one_server_convergence(self):
        pool = NodePool.homogeneous(2, 265.0)
        assert_converges(
            star_deployment(pool), dgemm_mflop(10), clients=60, duration=8.0
        )

    def test_second_server_hurts(self):
        one = run_fixed_load(
            star_deployment(NodePool.homogeneous(2, 265.0)),
            PARAMS, dgemm_mflop(10), clients=60, duration=8.0,
        ).throughput
        two = run_fixed_load(
            star_deployment(NodePool.homogeneous(3, 265.0)),
            PARAMS, dgemm_mflop(10), clients=60, duration=8.0,
        ).throughput
        assert two < one


class TestHeterogeneousRegime:
    def test_heterogeneous_star_convergence(self):
        pool = NodePool.heterogeneous([265.0, 240.0, 180.0, 120.0, 60.0])
        assert_converges(
            star_deployment(pool), dgemm_mflop(200), clients=60, rel=0.08
        )

    def test_share_split_tracks_eq8(self):
        from repro.core.comp_model import server_share

        pool = NodePool.heterogeneous([265.0, 200.0, 100.0])
        h = star_deployment(pool)
        result = run_fixed_load(
            h, PARAMS, dgemm_mflop(200), clients=60, duration=20.0
        )
        counts = result.service_counts
        total = sum(counts.values())
        shares = server_share(PARAMS, [200.0, 100.0], [16.0, 16.0])
        measured = [counts["node-1"] / total, counts["node-2"] / total]
        for got, want in zip(measured, shares):
            assert got == pytest.approx(want, abs=0.06)


class TestMultiLevelRegime:
    def test_balanced_tree_convergence(self):
        pool = NodePool.homogeneous(10, 265.0)
        h = balanced_deployment(pool, middle_agents=2)
        assert_converges(h, dgemm_mflop(200), clients=80, rel=0.08)

    def test_heuristic_plan_convergence(self):
        pool = NodePool.uniform_random(12, low=100, high=300, seed=4)
        plan = HeuristicPlanner(PARAMS).plan(pool, dgemm_mflop(310))
        assert_converges(
            plan.hierarchy, dgemm_mflop(310), clients=80, rel=0.08,
            duration=20.0,
        )


class TestRankingPreserved:
    def test_measured_ranking_matches_predicted_ranking(self):
        """The reproduction criterion: who wins must transfer from model
        to measurement (Figure 6 in miniature)."""
        from repro.platforms.background import heterogenize

        pool = heterogenize(
            NodePool.homogeneous(48, 265.0), loaded_fraction=0.5, seed=5
        )
        wapp = dgemm_mflop(200)
        auto = HeuristicPlanner(PARAMS).plan(pool, wapp).hierarchy
        star = star_deployment(pool)
        rows = {}
        for label, h in [("auto", auto), ("star", star)]:
            predicted = hierarchy_throughput(h, PARAMS, wapp).throughput
            measured = run_fixed_load(
                h, PARAMS, wapp, clients=160, duration=10.0
            ).throughput
            rows[label] = (predicted, measured)
        assert rows["auto"][0] > rows["star"][0]  # model ranking
        assert rows["auto"][1] > rows["star"][1]  # measured ranking
