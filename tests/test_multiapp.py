"""Multi-application deployment extension."""

import pytest

from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.errors import ParameterError, PlanningError
from repro.extensions.multiapp import (
    Application,
    MultiAppPlanner,
    multiapp_service_ok,
)
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

PARAMS = ModelParams()


class TestApplication:
    def test_validation(self):
        with pytest.raises(ParameterError):
            Application(name="", app_work=1.0, demand=1.0)
        with pytest.raises(ParameterError):
            Application(name="a", app_work=0.0, demand=1.0)
        with pytest.raises(ParameterError):
            Application(name="a", app_work=1.0, demand=0.0)


class TestServiceFeasibility:
    def test_single_app_matches_eq15_boundary(self):
        # With own_rate == total_rate the check reduces to the single-app
        # service model: feasible exactly up to Eq. 15's rate.
        from repro.core.throughput import service_throughput

        powers = [265.0, 200.0]
        wapp = 16.0
        limit = service_throughput(PARAMS, powers, [wapp, wapp])
        assert multiapp_service_ok(PARAMS, powers, wapp, limit * 0.99, limit * 0.99)
        assert not multiapp_service_ok(
            PARAMS, powers, wapp, limit * 1.05, limit * 1.05
        )

    def test_foreign_prediction_load_reduces_capacity(self):
        powers = [265.0]
        wapp = 16.0
        own = 10.0
        # Same own rate but a large foreign request stream to predict for.
        assert multiapp_service_ok(PARAMS, powers, wapp, own, own)
        assert not multiapp_service_ok(PARAMS, powers, wapp, own, 50_000.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            multiapp_service_ok(PARAMS, [1.0], 1.0, 5.0, 2.0)  # own > total
        assert not multiapp_service_ok(PARAMS, [], 1.0, 1.0, 1.0)


class TestPlanner:
    def test_two_applications_satisfied(self):
        pool = NodePool.homogeneous(40, 265.0)
        apps = [
            Application("dgemm-200", dgemm_mflop(200), demand=60.0),
            Application("dgemm-310", dgemm_mflop(310), demand=30.0),
        ]
        plan = MultiAppPlanner(PARAMS).plan(pool, apps)
        assert plan.fully_satisfied
        plan.hierarchy.validate(strict=True)
        # Dedicated servers: assignments partition the server set.
        servers = set(plan.hierarchy.servers)
        assigned = [s for app in apps for s in plan.servers_of(app.name)]
        assert len(assigned) == len(set(assigned))
        assert set(assigned) == {str(s) for s in servers}

    def test_per_app_service_capacity_honored(self):
        pool = NodePool.homogeneous(40, 265.0)
        apps = [
            Application("big", dgemm_mflop(310), demand=50.0),
            Application("small", dgemm_mflop(100), demand=200.0),
        ]
        plan = MultiAppPlanner(PARAMS).plan(pool, apps)
        total = plan.total_rate
        for app in apps:
            powers = [
                pool[name].power for name in plan.servers_of(app.name)
            ]
            assert multiapp_service_ok(
                PARAMS, powers, app.app_work, plan.rates[app.name], total
            )

    def test_agent_tier_sized_for_total_rate(self):
        pool = NodePool.homogeneous(60, 265.0)
        apps = [
            Application("a", dgemm_mflop(200), demand=150.0),
            Application("b", dgemm_mflop(200), demand=150.0),
        ]
        plan = MultiAppPlanner(PARAMS).plan(pool, apps)
        # Every agent must schedule the combined 300 req/s stream.
        report = hierarchy_throughput(
            plan.hierarchy, PARAMS, dgemm_mflop(200)
        )
        assert report.sched >= plan.total_rate * (1 - 1e-9)

    def test_uses_fewer_nodes_for_lower_demand(self):
        pool = NodePool.homogeneous(60, 265.0)
        small = MultiAppPlanner(PARAMS).plan(
            pool, [Application("a", dgemm_mflop(200), demand=20.0)]
        )
        large = MultiAppPlanner(PARAMS).plan(
            pool, [Application("a", dgemm_mflop(200), demand=200.0)]
        )
        assert len(small.hierarchy) < len(large.hierarchy)

    def test_overload_scales_down_proportionally(self):
        pool = NodePool.homogeneous(6, 265.0)
        apps = [
            Application("a", dgemm_mflop(310), demand=500.0),
            Application("b", dgemm_mflop(310), demand=250.0),
        ]
        plan = MultiAppPlanner(PARAMS).plan(pool, apps)
        assert not plan.fully_satisfied
        assert 0.0 < plan.scale < 1.0
        # Proportionality preserved.
        assert plan.rates["a"] / plan.rates["b"] == pytest.approx(2.0)
        plan.hierarchy.validate(strict=True)

    def test_validation(self):
        pool = NodePool.homogeneous(10, 265.0)
        with pytest.raises(PlanningError):
            MultiAppPlanner(PARAMS).plan(pool, [])
        dup = [
            Application("x", 1.0, 1.0),
            Application("x", 2.0, 1.0),
        ]
        with pytest.raises(PlanningError):
            MultiAppPlanner(PARAMS).plan(pool, dup)
        tiny = NodePool.homogeneous(2, 265.0)
        with pytest.raises(PlanningError):
            MultiAppPlanner(PARAMS).plan(
                tiny, [Application("a", 1.0, 1.0), Application("b", 1.0, 1.0)]
            )

    def test_heterogeneous_pool(self):
        pool = NodePool.uniform_random(50, low=80, high=400, seed=12)
        apps = [
            Application("a", dgemm_mflop(200), demand=100.0),
            Application("b", dgemm_mflop(100), demand=300.0),
            Application("c", dgemm_mflop(310), demand=20.0),
        ]
        plan = MultiAppPlanner(PARAMS).plan(pool, apps)
        plan.hierarchy.validate(strict=True)
        assert plan.fully_satisfied
        assert set(plan.assignments) == {"a", "b", "c"}
