"""Observability subsystem: tracing, metrics, and the determinism contract.

The load-bearing claims, each asserted here:

* same seed => byte-identical exported JSONL traces, including runs
  with injected faults and timeout-modelled detection (hypothesis
  sweeps the scenario space);
* serial and process-pool ``control_sweep`` export byte-identical
  cell traces;
* the ``ControlTimeline`` is bit-identical with tracing enabled and
  disabled — the tracer observes, never perturbs — and every epoch
  record carries a frozen metrics snapshot in both modes;
* the Chrome trace export is valid JSON in trace-event shape;
* detection spans measure exactly what ``DetectionRecord`` records;
* the wall-clock lint holds for the tree and catches violations.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import PlanningSession
from repro.control import ControlLoop, flash_crowd
from repro.errors import ControlError, PlanningError
from repro.obs import (
    NULL_OBS,
    NULL_TRACER,
    MetricsRegistry,
    MetricsSnapshot,
    NullTracer,
    Obs,
    Stopwatch,
    Tracer,
)
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

WORK = dgemm_mflop(200)
REPO_ROOT = Path(__file__).resolve().parent.parent

FAULTS = "crash:target=busiest-child,at=8"
DETECTION = "timeout=0.5,retries=1,threshold=3,grace=2"


def small_loop(**overrides):
    """A fast-running controller over a 10-node pool."""
    defaults = dict(
        pool=NodePool.uniform_random(10, low=80, high=400, seed=7),
        app_work=WORK,
        trace=flash_crowd(base=3, peak=20, at=8, rise=2, fall=6),
        policy="reactive",
        policy_options={"hysteresis": 1, "cooldown": 1},
        epochs=8,
        epoch_duration=2.0,
        initial_fraction=0.4,
        seed=5,
    )
    defaults.update(overrides)
    return ControlLoop(**defaults)


def traced_run(**overrides):
    """Run a small loop with a fresh tracer; return (timeline, obs)."""
    obs = Obs()
    timeline = small_loop(obs=obs, **overrides).run()
    return timeline, obs


class TestProbe:
    def test_null_tracer_is_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.event(1.0, "cat", "name", key=1)
        assert tracer.begin(1.0, "cat", "name") == -1
        tracer.end(2.0, -1)
        tracer.span(1.0, 2.0, "cat", "name")
        tracer.sample(1.0, "metric", 3.0)
        tracer.clear()

    def test_null_obs_is_shared_and_disabled(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.tracer is NULL_TRACER
        assert NULL_OBS.metrics is None

    def test_obs_defaults_to_live_tracer_and_registry(self):
        obs = Obs()
        assert obs.enabled is True
        assert isinstance(obs.tracer, Tracer)
        assert isinstance(obs.metrics, MetricsRegistry)

    def test_stopwatch_accumulates_and_resets(self):
        watch = Stopwatch()
        with watch:
            pass
        assert watch.total >= 0.0
        first = watch.total
        with watch:
            with watch:  # nesting must not double-count into infinity
                pass
        assert watch.total >= first
        watch.reset()
        assert watch.total == 0.0


class TestTracer:
    def test_span_lifecycle_and_filters(self):
        tracer = Tracer()
        span = tracer.begin(1.0, "epoch", "simulate", index=0)
        tracer.event(1.5, "fault", "crash", target="n1")
        tracer.end(2.0, span)
        tracer.sample(2.0, "served_rate", 12.5)
        assert len(tracer) == 3
        (recorded,) = tracer.spans()
        assert (recorded.ts, recorded.dur) == (1.0, 1.0)
        (event,) = tracer.events()
        assert event.cat == "fault"

    def test_jsonl_is_compact_sorted_and_wall_free(self):
        _, obs = traced_run()
        text = obs.tracer.to_jsonl()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == len(obs.tracer)
        for line in lines:
            record = json.loads(line)
            assert "wall" not in record
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )

    def test_jsonl_wall_profile_is_opt_in_metadata(self):
        _, obs = traced_run()
        profiled = obs.tracer.to_jsonl(include_wall=True)
        assert profiled != obs.tracer.to_jsonl()
        assert any(
            "wall" in json.loads(line) for line in profiled.splitlines()
        )

    def test_chrome_export_is_valid_trace_event_json(self):
        _, obs = traced_run(faults=FAULTS, detection=DETECTION)
        data = json.loads(obs.tracer.to_chrome())
        events = data["traceEvents"]
        phases = {event["ph"] for event in events}
        assert {"X", "i", "C", "M"} <= phases
        for event in events:
            assert event["pid"] == 1
            if event["ph"] == "X":
                assert event["dur"] >= 0.0

    def test_tracer_clear_empties_records(self):
        tracer = Tracer()
        tracer.event(0.0, "cat", "name")
        tracer.clear()
        assert len(tracer) == 0


class TestMetricsOnTimeline:
    def test_every_epoch_record_carries_a_snapshot(self):
        timeline = small_loop().run()
        for record in timeline.records:
            assert isinstance(record.metrics, MetricsSnapshot)
            assert record.metrics.value("conversations_served") is not None

    def test_snapshots_match_record_fields(self):
        timeline = small_loop().run()
        for record in timeline.records:
            snapshot = record.metrics
            assert snapshot.value("offered_clients") == record.offered
            assert snapshot.value("served_rate") == record.served_rate
            assert snapshot.value("deployed_nodes") == record.deployed_nodes
            assert snapshot.value("spares") == record.spares

    def test_diff_counts_the_window(self):
        timeline = small_loop().run()
        first, last = timeline.records[0], timeline.records[-1]
        diff = last.metrics.diff(first.metrics)
        assert diff.value("conversations_served") == (
            last.metrics.value("conversations_served")
            - first.metrics.value("conversations_served")
        )
        assert isinstance(diff.describe(), str)

    def test_detection_metrics_reach_the_snapshot(self):
        timeline = small_loop(
            epochs=10, faults=FAULTS, detection=DETECTION
        ).run()
        final = timeline.records[-1].metrics
        assert final.value("faults_injected") == 1
        assert final.value("detections_confirmed") == 1
        stats = final.histogram("detection_latency")
        assert stats is not None and stats.count == 1
        assert stats.total == pytest.approx(
            timeline.mean_detection_latency
        )


class TestDeterminism:
    def test_timeline_bit_identical_with_and_without_tracing(self):
        traced, _ = traced_run(faults=FAULTS, detection=DETECTION, epochs=10)
        plain = small_loop(faults=FAULTS, detection=DETECTION, epochs=10).run()
        assert traced == plain

    def test_repeated_runs_export_identical_bytes(self):
        _, first = traced_run(faults=FAULTS, detection=DETECTION)
        _, second = traced_run(faults=FAULTS, detection=DETECTION)
        assert first.tracer.to_jsonl() == second.tracer.to_jsonl()
        assert first.tracer.to_chrome() == second.tracer.to_chrome()

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        fault_at=st.floats(min_value=2.0, max_value=12.0),
        detected=st.booleans(),
    )
    @settings(max_examples=5, deadline=None)
    def test_same_scenario_same_bytes(self, seed, fault_at, detected):
        """Any (seed, fault time, detection mode) scenario traces
        byte-identically across two independent runs."""
        kwargs = dict(
            epochs=6,
            seed=seed,
            faults=f"crash:target=busiest-child,at={fault_at}",
        )
        if detected:
            kwargs["detection"] = DETECTION
        _, first = traced_run(**kwargs)
        _, second = traced_run(**kwargs)
        assert first.tracer.to_jsonl() == second.tracer.to_jsonl()

    def test_reused_loop_traces_identically_across_runs(self):
        loop = small_loop(obs=True)
        first_timeline = loop.run()
        first = loop.obs.tracer.to_jsonl()
        second_timeline = loop.run()
        assert loop.obs.tracer.to_jsonl() == first
        assert first_timeline == second_timeline


class TestSweepTracing:
    def test_serial_and_pooled_sweeps_trace_identically(self):
        session = PlanningSession()
        pool = NodePool.uniform_random(10, low=80, high=400, seed=7)
        kwargs = dict(
            traces=["flash:base=3,peak=20,at=8"],
            policies=("reactive",),
            seeds=(0, 1),
            epochs=5,
            epoch_duration=2.0,
            obs=True,
            faults=FAULTS,
            detection=DETECTION,
        )
        serial = session.control_sweep(
            pool, WORK, parallel=False, **kwargs
        )
        pooled = session.control_sweep(
            pool, WORK, parallel=True, max_workers=2, **kwargs
        )
        for cell_serial, cell_pooled in zip(serial, pooled):
            assert cell_serial.trace_jsonl is not None
            assert cell_serial.trace_jsonl == cell_pooled.trace_jsonl
            assert cell_serial.timeline == cell_pooled.timeline

    def test_untraced_sweep_leaves_trace_jsonl_none(self):
        session = PlanningSession()
        pool = NodePool.uniform_random(8, low=80, high=400, seed=7)
        cells = session.control_sweep(
            pool, WORK, traces=["constant:level=5"], seeds=(0,),
            epochs=3, epoch_duration=2.0, parallel=False,
        )
        assert cells[0].trace_jsonl is None

    def test_sweep_rejects_non_bool_obs(self):
        session = PlanningSession()
        pool = NodePool.uniform_random(8, low=80, high=400, seed=7)
        with pytest.raises(PlanningError, match="obs must be a bool"):
            session.control_sweep(
                pool, WORK, traces=["constant:level=5"], obs=Obs()
            )


class TestDetectionSpans:
    def test_detection_span_matches_detection_record(self):
        timeline, obs = traced_run(
            epochs=10, faults=FAULTS, detection=DETECTION
        )
        detections = [
            detection
            for record in timeline.records
            for detection in record.detections
        ]
        assert detections, "scenario must confirm at least one failure"
        spans = [
            span for span in obs.tracer.spans() if span.cat == "detection"
        ]
        assert len(spans) == len(detections)
        for span, detection in zip(spans, detections):
            assert span.name == detection.node
            args = dict(span.args)
            assert args["latency"] == detection.latency
            assert span.dur == pytest.approx(detection.latency)

    def test_fault_events_record_the_injection(self):
        _, obs = traced_run(epochs=10, faults=FAULTS)
        faults = [
            event for event in obs.tracer.events() if event.cat == "fault"
        ]
        assert len(faults) == 1
        assert faults[0].name == "crash"


class TestLoopObsArgument:
    def test_true_builds_a_fresh_obs(self):
        loop = small_loop(obs=True)
        assert loop.obs.enabled is True

    def test_none_and_false_disable(self):
        assert small_loop(obs=None).obs is NULL_OBS
        assert small_loop(obs=False).obs is NULL_OBS

    def test_rejects_foreign_objects(self):
        with pytest.raises(ControlError):
            small_loop(obs=object())

    def test_overhead_seconds_still_measures(self):
        loop = small_loop(epochs=4)
        loop.run()
        assert loop.overhead_seconds > 0.0


class TestWallclockLint:
    def test_source_tree_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_wallclock.py")],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_lint_catches_a_violation(self, tmp_path):
        offender = tmp_path / "repro" / "control"
        offender.mkdir(parents=True)
        (offender / "bad.py").write_text(
            "import time\n\n\ndef now():\n    return time.time()\n"
        )
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "check_wallclock.py"),
                str(tmp_path),
            ],
            capture_output=True, text=True,
        )
        assert result.returncode == 1
        assert "time.time" in result.stdout

    def test_lint_allows_obs_package(self, tmp_path):
        allowed = tmp_path / "repro" / "obs"
        allowed.mkdir(parents=True)
        (allowed / "probe.py").write_text(
            "from time import perf_counter\n"
        )
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "check_wallclock.py"),
                str(tmp_path),
            ],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestCliTrace:
    def test_trace_subcommand_writes_chrome_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            [
                "trace", "--nodes", "8", "--dgemm", "200",
                "--trace", "constant:level=6",
                "--epochs", "4", "--epoch-duration", "2",
                "--output", str(output),
                "--metrics-output", str(metrics),
            ]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert data["traceEvents"]
        lines = metrics.read_text().splitlines()
        assert len(lines) == 4
        assert {"counters", "gauges", "histograms"} <= set(
            json.loads(lines[0])
        )
        assert "wrote" in capsys.readouterr().out
