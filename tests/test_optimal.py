"""Exhaustive reference planner."""

import pytest

from repro.core.optimal import (
    MAX_EXHAUSTIVE_NODES,
    build_from_roles,
    exhaustive_plan,
)
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.errors import PlanningError
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.fixture
def p() -> ModelParams:
    return ModelParams()


class TestBuildFromRoles:
    def test_simple_star(self):
        pool = NodePool.homogeneous(4, 100.0)
        h = build_from_roles(
            pool, {"node-0": 3}, ["node-1", "node-2", "node-3"]
        )
        assert h.shape_signature() == (4, 1, 3, 1)
        h.validate(strict=True)

    def test_two_level(self):
        pool = NodePool.homogeneous(6, 100.0)
        h = build_from_roles(
            pool,
            {"node-0": 2, "node-1": 3},
            ["node-2", "node-3", "node-4", "node-5"],
        )
        h.validate(strict=True)
        assert len(h.agents) == 2

    def test_degree_one_agent_becomes_root(self):
        pool = NodePool.heterogeneous([100.0, 300.0, 200.0, 150.0])
        # node-1 is the fastest but the degree-1 agent must be root.
        h = build_from_roles(
            pool, {"node-0": 1, "node-1": 2}, ["node-2", "node-3"]
        )
        assert h.root == "node-0"
        h.validate(strict=True)

    def test_two_degree_one_agents_rejected(self):
        pool = NodePool.homogeneous(4, 100.0)
        with pytest.raises(PlanningError):
            build_from_roles(
                pool, {"node-0": 1, "node-1": 1}, ["node-2", "node-3"]
            )

    def test_slot_mismatch_rejected(self):
        pool = NodePool.homogeneous(4, 100.0)
        with pytest.raises(PlanningError):
            build_from_roles(pool, {"node-0": 5}, ["node-1"])


class TestExhaustivePlan:
    def test_tiny_grain_picks_pair(self, p):
        pool = NodePool.homogeneous(5, 265.0)
        plan = exhaustive_plan(pool, p, dgemm_mflop(10))
        assert plan.nodes_used == 2

    def test_huge_grain_uses_all_nodes_as_star(self, p):
        pool = NodePool.homogeneous(5, 265.0)
        plan = exhaustive_plan(pool, p, dgemm_mflop(1000))
        assert plan.nodes_used == 5
        assert len(plan.hierarchy.agents) == 1

    def test_beats_every_dary_tree(self, p):
        from repro.core.baselines import dary_deployment

        pool = NodePool.homogeneous(7, 265.0)
        wapp = dgemm_mflop(150)
        plan = exhaustive_plan(pool, p, wapp)
        for degree in range(1, 7):
            rho = hierarchy_throughput(
                dary_deployment(pool, degree), p, wapp
            ).throughput
            assert plan.throughput >= rho - 1e-9

    def test_service_bound_puts_fast_node_in_server_tier(self, p):
        # With a service-bound workload the optimum spends the fast node
        # where the work is: serving, not scheduling.  (The paper's
        # heuristic always promotes the fastest nodes to agents — this is
        # exactly the case where that costs throughput; see the ablation
        # benchmark.)
        pool = NodePool.heterogeneous([400.0, 100.0, 100.0, 100.0])
        plan = exhaustive_plan(pool, p, dgemm_mflop(150))
        assert "node-0" in plan.hierarchy.servers
        assert plan.hierarchy.agents == ["node-1"]

    def test_demand_prefers_fewer_nodes(self, p):
        pool = NodePool.homogeneous(6, 265.0)
        wapp = dgemm_mflop(200)
        free = exhaustive_plan(pool, p, wapp)
        capped = exhaustive_plan(pool, p, wapp, demand=20.0)
        assert capped.throughput >= 20.0
        assert capped.nodes_used <= free.nodes_used

    def test_size_guard(self, p):
        pool = NodePool.homogeneous(MAX_EXHAUSTIVE_NODES + 1, 100.0)
        with pytest.raises(PlanningError):
            exhaustive_plan(pool, p, 1.0)

    def test_result_is_strictly_valid(self, p):
        pool = NodePool.heterogeneous([300.0, 250.0, 180.0, 120.0, 70.0])
        for size in (10, 200, 1000):
            plan = exhaustive_plan(pool, p, dgemm_mflop(size))
            plan.hierarchy.validate(strict=True)
            # Reported throughput must match a fresh evaluation.
            fresh = hierarchy_throughput(
                plan.hierarchy, p, dgemm_mflop(size)
            ).throughput
            assert plan.throughput == pytest.approx(fresh)
