"""Model parameter set (Table 3)."""

import pytest

from repro.core.params import DEFAULT_PARAMS, LevelSizes, ModelParams
from repro.errors import ParameterError


class TestLevelSizes:
    def test_round_trip_sum(self):
        sizes = LevelSizes(sreq=2.0, srep=3.0)
        assert sizes.round_trip == 5.0

    @pytest.mark.parametrize("sreq,srep", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_nonpositive(self, sreq, srep):
        with pytest.raises(ParameterError):
            LevelSizes(sreq=sreq, srep=srep)


class TestDefaults:
    def test_table3_agent_values(self):
        p = DEFAULT_PARAMS
        assert p.wreq == pytest.approx(1.7e-1)
        assert p.wfix == pytest.approx(4.0e-3)
        assert p.wsel == pytest.approx(5.4e-3)
        assert p.agent_sizes.sreq == pytest.approx(5.3e-3)
        assert p.agent_sizes.srep == pytest.approx(5.4e-3)

    def test_table3_server_values(self):
        p = DEFAULT_PARAMS
        assert p.wpre == pytest.approx(6.4e-3)
        assert p.server_sizes.sreq == pytest.approx(5.3e-5)
        assert p.server_sizes.srep == pytest.approx(6.4e-5)

    def test_service_sizes_default_to_server_sizes(self):
        assert DEFAULT_PARAMS.service_sizes == DEFAULT_PARAMS.server_sizes

    def test_gigabit_default(self):
        assert DEFAULT_PARAMS.bandwidth == 1000.0


class TestWrep:
    def test_linear_in_degree(self):
        p = ModelParams()
        assert p.wrep(0) == pytest.approx(p.wfix)
        assert p.wrep(10) == pytest.approx(p.wfix + 10 * p.wsel)

    def test_difference_is_wsel(self):
        p = ModelParams()
        assert p.wrep(7) - p.wrep(6) == pytest.approx(p.wsel)

    def test_rejects_negative_degree(self):
        with pytest.raises(ParameterError):
            ModelParams().wrep(-1)


class TestValidationAndCopies:
    def test_rejects_negative_work(self):
        with pytest.raises(ParameterError):
            ModelParams(wreq=-1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ParameterError):
            ModelParams(bandwidth=0.0)

    def test_with_bandwidth_copies(self):
        p = ModelParams()
        q = p.with_bandwidth(100.0)
        assert q.bandwidth == 100.0
        assert p.bandwidth == 1000.0  # original untouched
        assert q.wreq == p.wreq

    def test_replace_arbitrary_field(self):
        q = ModelParams().replace(wpre=0.5)
        assert q.wpre == 0.5

    def test_explicit_service_sizes_kept(self):
        sizes = LevelSizes(sreq=1.0, srep=2.0)
        p = ModelParams(service_sizes=sizes)
        assert p.service_sizes == sizes

    def test_frozen(self):
        with pytest.raises(Exception):
            ModelParams().wreq = 1.0  # type: ignore[misc]
