"""The plan_deployment facade."""

import pytest

from repro.core.planner import PLANNING_METHODS, plan_deployment
from repro.errors import PlanningError
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.fixture
def pool() -> NodePool:
    return NodePool.uniform_random(20, low=100, high=400, seed=8)


class TestMethods:
    def test_all_methods_produce_valid_deployments(self, pool):
        for method in PLANNING_METHODS:
            if method == "exhaustive":
                continue  # pool too large; tested separately
            kwargs = {}
            if method == "balanced":
                kwargs["middle_agents"] = 3
            elif method == "chain":
                kwargs["agents"] = 2
            deployment = plan_deployment(
                pool, dgemm_mflop(200), method=method, **kwargs
            )
            deployment.hierarchy.validate(strict=True)
            assert deployment.method == method
            assert deployment.throughput > 0

    def test_exhaustive_method_on_small_pool(self):
        pool = NodePool.uniform_random(5, low=100, high=400, seed=8)
        deployment = plan_deployment(pool, dgemm_mflop(200), method="exhaustive")
        deployment.hierarchy.validate(strict=True)

    def test_unknown_method_rejected(self, pool):
        with pytest.raises(PlanningError):
            plan_deployment(pool, 1.0, method="oracle")

    def test_unknown_option_rejected(self, pool):
        with pytest.raises(PlanningError):
            plan_deployment(pool, 1.0, wibble=True)

    def test_heuristic_options_forwarded(self, pool):
        incremental = plan_deployment(
            pool, dgemm_mflop(310), strategy="incremental", patience=1
        )
        incremental.hierarchy.validate(strict=True)
        windowed = plan_deployment(
            pool, dgemm_mflop(310), agent_selection="windowed"
        )
        default = plan_deployment(pool, dgemm_mflop(310))
        assert windowed.throughput >= default.throughput - 1e-9

    def test_homogeneous_spanning_option(self):
        pool = NodePool.homogeneous(10, 265.0)
        spanning = plan_deployment(
            pool, dgemm_mflop(10), method="homogeneous", spanning_only=True
        )
        assert spanning.nodes_used == 10

    def test_default_params_are_table3(self, pool):
        deployment = plan_deployment(pool, dgemm_mflop(200))
        assert deployment.params.wreq == pytest.approx(0.17)

    def test_heuristic_beats_or_ties_sorted_star(self, pool):
        # Compare against the star whose agent is the node the heuristic
        # itself would pick (pool sorted by power).  A *positional* star
        # can beat the paper's policy by accident on service-bound pools —
        # its slow agent leaves the fastest node serving; the windowed
        # extension covers that case below.
        wapp = dgemm_mflop(310)
        heuristic = plan_deployment(pool, wapp)
        star = plan_deployment(pool.sorted_by_power(), wapp, method="star")
        assert heuristic.throughput >= star.throughput - 1e-9

    def test_windowed_heuristic_beats_or_ties_any_star(self, pool):
        wapp = dgemm_mflop(310)
        windowed = plan_deployment(pool, wapp, agent_selection="windowed")
        for candidate in (pool, pool.sorted_by_power()):
            star = plan_deployment(candidate, wapp, method="star")
            assert windowed.throughput >= star.throughput - 1e-9

    def test_demand_forwarded(self, pool):
        capped = plan_deployment(pool, dgemm_mflop(200), demand=20.0)
        assert capped.throughput >= 20.0
        assert capped.nodes_used <= 5
