"""Platform substrate: nodes, pools, network, background load, rating."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.platforms.background import BackgroundWorkload, heterogenize
from repro.platforms.network import HomogeneousNetwork
from repro.platforms.node import Node
from repro.platforms.pool import NodePool
from repro.platforms.rating import rate_node, rate_pool


class TestNode:
    def test_basic_construction(self):
        node = Node(power=100.0, name="n1")
        assert node.base_power == 100.0
        assert node.background_load == 0.0

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ParameterError):
            Node(power=0.0, name="n")

    def test_loaded_scales_power(self):
        node = Node(power=200.0, name="n")
        loaded = node.loaded(0.25)
        assert loaded.power == pytest.approx(150.0)
        assert loaded.base_power == 200.0
        assert loaded.background_load == 0.25

    def test_loaded_rejects_full_load(self):
        with pytest.raises(ParameterError):
            Node(power=100.0, name="n").loaded(1.0)

    def test_with_power_copies(self):
        node = Node(power=100.0, name="n")
        assert node.with_power(50.0).power == 50.0
        assert node.power == 100.0

    def test_ordering_by_power_then_name(self):
        nodes = [Node(power=2.0, name="b"), Node(power=2.0, name="a"),
                 Node(power=1.0, name="c")]
        assert [n.name for n in sorted(nodes)] == ["c", "a", "b"]


class TestNodePool:
    def test_homogeneous(self):
        pool = NodePool.homogeneous(5, 100.0)
        assert len(pool) == 5
        assert pool.is_homogeneous
        assert pool.total_power == 500.0

    def test_heterogeneous_and_indexing(self):
        pool = NodePool.heterogeneous([10.0, 20.0])
        assert pool[0].power == 10.0
        assert pool["node-1"].power == 20.0
        assert "node-0" in pool

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParameterError):
            NodePool([Node(power=1.0, name="x"), Node(power=2.0, name="x")])

    def test_uniform_random_reproducible(self):
        a = NodePool.uniform_random(10, low=10, high=20, seed=5)
        b = NodePool.uniform_random(10, low=10, high=20, seed=5)
        assert a.powers == b.powers
        assert all(10 <= p <= 20 for p in a.powers)

    def test_uniform_random_different_seeds_differ(self):
        a = NodePool.uniform_random(10, low=10, high=20, seed=1)
        b = NodePool.uniform_random(10, low=10, high=20, seed=2)
        assert a.powers != b.powers

    def test_clustered(self):
        pool = NodePool.clustered([2, 3], [100.0, 50.0])
        assert pool.powers == [100.0, 100.0, 50.0, 50.0, 50.0]

    def test_clustered_length_mismatch(self):
        with pytest.raises(ParameterError):
            NodePool.clustered([2], [100.0, 50.0])

    def test_sorted_by_power(self):
        pool = NodePool.heterogeneous([10.0, 30.0, 20.0])
        assert pool.sorted_by_power().powers == [30.0, 20.0, 10.0]
        assert pool.sorted_by_power(descending=False).powers == [10.0, 20.0, 30.0]

    def test_take_and_without(self):
        pool = NodePool.homogeneous(5, 100.0)
        assert len(pool.take(3)) == 3
        reduced = pool.without(["node-0", "node-4"])
        assert reduced.names == ["node-1", "node-2", "node-3"]

    def test_without_unknown_rejected(self):
        with pytest.raises(ParameterError):
            NodePool.homogeneous(3, 1.0).without(["ghost"])

    def test_take_out_of_range(self):
        with pytest.raises(ParameterError):
            NodePool.homogeneous(3, 1.0).take(4)

    def test_replace_node(self):
        pool = NodePool.homogeneous(3, 100.0)
        swapped = pool.replace_node(pool[1].with_power(55.0))
        assert swapped["node-1"].power == 55.0
        assert pool["node-1"].power == 100.0

    def test_heterogeneity_zero_for_homogeneous(self):
        assert NodePool.homogeneous(4, 123.0).heterogeneity() == 0.0

    def test_heterogeneity_positive_for_mixed(self):
        assert NodePool.heterogeneous([10.0, 1000.0]).heterogeneity() > 0.5


class TestNetwork:
    def test_transfer_time(self):
        net = HomogeneousNetwork(bandwidth=100.0)
        assert net.transfer_time(50.0) == pytest.approx(0.5)

    def test_latency_added(self):
        net = HomogeneousNetwork(bandwidth=100.0, latency=0.01)
        assert net.transfer_time(0.0) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            HomogeneousNetwork(bandwidth=0.0)
        with pytest.raises(ParameterError):
            HomogeneousNetwork(latency=-1.0)
        with pytest.raises(ParameterError):
            HomogeneousNetwork().transfer_time(-1.0)


class TestBackgroundWorkload:
    def test_zero_matrix_steals_nothing(self):
        assert BackgroundWorkload(matrix_size=0).stolen_share == 0.0

    def test_share_monotone_in_size(self):
        shares = [
            BackgroundWorkload(matrix_size=n).stolen_share
            for n in (100, 200, 400, 800, 1600)
        ]
        assert shares == sorted(shares)

    def test_share_bounded_by_max(self):
        big = BackgroundWorkload(matrix_size=100_000, max_share=0.9)
        assert big.stolen_share < 0.9

    def test_half_size_is_midpoint(self):
        job = BackgroundWorkload(matrix_size=400, half_size=400, max_share=0.8)
        assert job.stolen_share == pytest.approx(0.4)

    def test_apply_degrades_node(self):
        node = Node(power=200.0, name="n")
        loaded = BackgroundWorkload(matrix_size=400).apply(node)
        assert loaded.power < node.power
        assert loaded.base_power == node.base_power


class TestHeterogenize:
    def test_loads_requested_fraction(self):
        pool = NodePool.homogeneous(100, 200.0)
        het = heterogenize(pool, loaded_fraction=0.5, seed=0)
        degraded = [n for n in het if n.power < 200.0]
        assert len(degraded) == 50

    def test_preserves_names_and_count(self):
        pool = NodePool.homogeneous(20, 200.0)
        het = heterogenize(pool, loaded_fraction=0.3, seed=1)
        assert het.names == pool.names

    def test_reproducible(self):
        pool = NodePool.homogeneous(20, 200.0)
        assert heterogenize(pool, seed=7).powers == heterogenize(pool, seed=7).powers

    def test_zero_fraction_identity(self):
        pool = NodePool.homogeneous(10, 200.0)
        assert heterogenize(pool, loaded_fraction=0.0).powers == pool.powers

    def test_validation(self):
        pool = NodePool.homogeneous(4, 200.0)
        with pytest.raises(ParameterError):
            heterogenize(pool, loaded_fraction=1.5)
        with pytest.raises(ParameterError):
            heterogenize(pool, matrix_sizes=())


class TestRating:
    def test_noiseless_rating_is_exact(self):
        node = Node(power=123.0, name="n")
        assert rate_node(node) == 123.0

    def test_noisy_rating_never_exceeds_truth(self):
        node = Node(power=100.0, name="n")
        for seed in range(10):
            assert rate_node(node, noise=0.2, seed=seed) <= 100.0

    def test_more_trials_tighter_estimate(self):
        node = Node(power=100.0, name="n")
        rng = np.random.default_rng(0)
        few = np.mean([rate_node(node, noise=0.3, trials=1, seed=rng) for _ in range(50)])
        rng = np.random.default_rng(0)
        many = np.mean([rate_node(node, noise=0.3, trials=10, seed=rng) for _ in range(50)])
        assert many > few  # best-of-k approaches the true capacity

    def test_rate_pool_preserves_names(self):
        pool = NodePool.homogeneous(5, 100.0)
        rated = rate_pool(pool, noise=0.1, seed=3)
        assert rated.names == pool.names
        assert all(r.power <= 100.0 for r in rated)

    def test_validation(self):
        node = Node(power=1.0, name="n")
        with pytest.raises(ParameterError):
            rate_node(node, noise=-1.0)
        with pytest.raises(ParameterError):
            rate_node(node, trials=0)
