"""Property-based tests on the throughput model (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import comp_model
from repro.core.params import LevelSizes, ModelParams
from repro.core.throughput import (
    agent_sched_throughput,
    server_sched_throughput,
    service_throughput,
)

powers = st.floats(min_value=1.0, max_value=1e5, allow_nan=False)
works = st.floats(min_value=1e-6, max_value=1e5, allow_nan=False)
degrees = st.integers(min_value=1, max_value=500)
sizes = st.floats(min_value=1e-9, max_value=100.0, allow_nan=False)


@st.composite
def params_strategy(draw) -> ModelParams:
    return ModelParams(
        wreq=draw(st.floats(min_value=0.0, max_value=10.0)),
        wfix=draw(st.floats(min_value=0.0, max_value=1.0)),
        wsel=draw(st.floats(min_value=1e-9, max_value=1.0)),
        wpre=draw(st.floats(min_value=0.0, max_value=10.0)),
        agent_sizes=LevelSizes(sreq=draw(sizes), srep=draw(sizes)),
        server_sizes=LevelSizes(sreq=draw(sizes), srep=draw(sizes)),
        bandwidth=draw(st.floats(min_value=1.0, max_value=1e6)),
    )


class TestAgentRateProperties:
    @given(params_strategy(), powers, degrees)
    @settings(max_examples=80)
    def test_rate_positive_and_finite(self, p, w, d):
        rate = agent_sched_throughput(p, w, d)
        assert 0.0 < rate < float("inf")

    @given(params_strategy(), powers, degrees)
    @settings(max_examples=80)
    def test_rate_decreasing_in_degree(self, p, w, d):
        assert agent_sched_throughput(p, w, d) > agent_sched_throughput(
            p, w, d + 1
        )

    @given(params_strategy(), powers, degrees)
    @settings(max_examples=80)
    def test_rate_increasing_in_power(self, p, w, d):
        assert agent_sched_throughput(p, w * 2, d) >= agent_sched_throughput(
            p, w, d
        )

    @given(params_strategy(), powers, degrees)
    @settings(max_examples=50)
    def test_bandwidth_only_helps(self, p, w, d):
        faster = p.with_bandwidth(p.bandwidth * 2)
        assert agent_sched_throughput(faster, w, d) >= agent_sched_throughput(
            p, w, d
        )


class TestServiceProperties:
    @given(
        params_strategy(),
        st.lists(powers, min_size=1, max_size=20),
        works,
    )
    @settings(max_examples=80)
    def test_service_positive(self, p, server_powers, wapp):
        rate = service_throughput(p, server_powers, [wapp] * len(server_powers))
        assert rate > 0.0

    @given(
        params_strategy(),
        st.lists(powers, min_size=1, max_size=20),
        works,
        powers,
    )
    @settings(max_examples=80)
    def test_adding_fast_server_never_hurts_when_prediction_free(
        self, p, server_powers, wapp, extra
    ):
        # With Wpre = 0 the service rate must be monotone in the server set.
        p0 = p.replace(wpre=0.0)
        base = service_throughput(p0, server_powers, [wapp] * len(server_powers))
        grown = service_throughput(
            p0, server_powers + [extra], [wapp] * (len(server_powers) + 1)
        )
        assert grown >= base * (1 - 1e-12)

    @given(
        params_strategy(),
        st.lists(powers, min_size=1, max_size=20),
        works,
    )
    @settings(max_examples=80)
    def test_shares_sum_to_one_and_nonnegative(self, p, server_powers, wapp):
        shares = comp_model.server_share(
            p, server_powers, [wapp] * len(server_powers)
        )
        assert abs(sum(shares) - 1.0) < 1e-9
        assert all(s >= 0.0 for s in shares)

    @given(params_strategy(), powers)
    @settings(max_examples=80)
    def test_server_sched_rate_positive(self, p, w):
        assert server_sched_throughput(p, w) > 0.0


class TestScalingProperties:
    @given(params_strategy(), powers, degrees, st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=50)
    def test_uniform_speedup_scales_compute_bound_rate(self, p, w, d, factor):
        """If both power and bandwidth scale by k, every rate scales by k."""
        fast = p.with_bandwidth(p.bandwidth * factor)
        slow_rate = agent_sched_throughput(p, w, d)
        fast_rate = agent_sched_throughput(fast, w * factor, d)
        assert abs(fast_rate / slow_rate - factor) < 1e-6 * factor
