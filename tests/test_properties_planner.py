"""Property-based tests on the planners (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import star_deployment
from repro.core.heuristic import HeuristicPlanner
from repro.core.hierarchy import Role
from repro.core.optimal import exhaustive_plan
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.platforms.pool import NodePool

PARAMS = ModelParams()

pools = st.lists(
    st.floats(min_value=20.0, max_value=800.0),
    min_size=2,
    max_size=24,
).map(NodePool.heterogeneous)

small_pools = st.lists(
    st.floats(min_value=20.0, max_value=800.0),
    min_size=2,
    max_size=6,
).map(NodePool.heterogeneous)

app_works = st.floats(min_value=1e-3, max_value=5e3)


class TestPlanValidity:
    @given(pools, app_works)
    @settings(max_examples=60, deadline=None)
    def test_heuristic_always_produces_valid_plan(self, pool, wapp):
        plan = HeuristicPlanner(PARAMS).plan(pool, wapp)
        plan.hierarchy.validate(strict=True)
        # Every deployed node comes from the pool with its rated power.
        for node in plan.hierarchy:
            assert str(node) in pool
            assert plan.hierarchy.power(node) == pool[str(node)].power

    @given(pools, app_works)
    @settings(max_examples=40, deadline=None)
    def test_heuristic_servers_are_leaves_agents_internal(self, pool, wapp):
        plan = HeuristicPlanner(PARAMS).plan(pool, wapp)
        h = plan.hierarchy
        for node in h:
            if h.role(node) is Role.SERVER:
                assert not h.children(node)
            elif node != h.root:
                assert len(h.children(node)) >= 2

    @given(pools, app_works)
    @settings(max_examples=40, deadline=None)
    def test_incremental_strategy_also_valid(self, pool, wapp):
        plan = HeuristicPlanner(PARAMS, strategy="incremental").plan(pool, wapp)
        plan.hierarchy.validate(strict=True)


class TestPlanQuality:
    @given(pools, app_works)
    @settings(max_examples=40, deadline=None)
    def test_heuristic_at_least_matches_best_trivial_baseline(self, pool, wapp):
        """The heuristic must never lose to the two deployments anyone
        would write by hand: the full star and the minimal pair."""
        plan = HeuristicPlanner(PARAMS).plan(pool, wapp)
        sorted_pool = pool.sorted_by_power()
        star_rho = hierarchy_throughput(
            star_deployment(sorted_pool), PARAMS, wapp
        ).throughput
        pair_rho = hierarchy_throughput(
            star_deployment(sorted_pool.take(2)), PARAMS, wapp
        ).throughput
        assert plan.throughput >= max(star_rho, pair_rho) * (1 - 1e-9)

    @given(small_pools, app_works)
    @settings(max_examples=30, deadline=None)
    def test_windowed_heuristic_within_factor_two_of_optimal(self, pool, wapp):
        """Exhaustive search bounds the windowed heuristic's regret.

        The paper's fastest-as-agent policy has *unbounded* regret on
        adversarial pools (a very fast node wasted on scheduling — see
        test_windowed_fixes_pathological_pool).  The windowed extension
        also tries slow-agent windows, keeping it within 2x of optimal on
        every pool hypothesis can find.
        """
        plan = HeuristicPlanner(PARAMS, agent_selection="windowed").plan(
            pool, wapp
        )
        best = exhaustive_plan(pool, PARAMS, wapp)
        assert plan.throughput >= 0.5 * best.throughput - 1e-9

    @given(pools, app_works)
    @settings(max_examples=30, deadline=None)
    def test_windowed_never_worse_than_fastest(self, pool, wapp):
        fastest = HeuristicPlanner(PARAMS).plan(pool, wapp)
        windowed = HeuristicPlanner(PARAMS, agent_selection="windowed").plan(
            pool, wapp
        )
        assert windowed.throughput >= fastest.throughput - 1e-9

    def test_windowed_fixes_pathological_pool(self):
        """One very fast + one slow node, service-bound workload: the
        paper's policy parks the fast node as the agent (rho ~ 0.01 req/s);
        putting the slow node in charge lets the fast node serve
        (rho ~ 10 req/s)."""
        pool = NodePool.heterogeneous([10000.0, 10.0])
        wapp = 1000.0
        fastest = HeuristicPlanner(PARAMS).plan(pool, wapp)
        windowed = HeuristicPlanner(PARAMS, agent_selection="windowed").plan(
            pool, wapp
        )
        best = exhaustive_plan(pool, PARAMS, wapp)
        assert fastest.throughput < 0.01 * best.throughput
        assert windowed.throughput == pytest.approx(best.throughput, rel=1e-6)

    @given(
        st.integers(min_value=2, max_value=24),
        st.floats(min_value=50.0, max_value=500.0),
        app_works,
    )
    @settings(max_examples=30, deadline=None)
    def test_homogeneous_pools_heuristic_close_to_optimal_dary(
        self, n, power, wapp
    ):
        """On homogeneous pools the d-ary search of [10] is provably
        optimal among trees using the same node count; the heuristic must
        achieve at least 89% of it (the paper's Table 4 floor)."""
        from repro.core.homogeneous import HomogeneousPlanner

        pool = NodePool.homogeneous(n, power)
        heuristic = HeuristicPlanner(PARAMS).plan(pool, wapp)
        optimal = HomogeneousPlanner(PARAMS).plan(pool, wapp)
        assert heuristic.throughput >= 0.89 * optimal.throughput - 1e-9


class TestDemandProperties:
    @given(pools, app_works, st.floats(min_value=0.1, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_demand_never_uses_more_nodes_than_free_plan(
        self, pool, wapp, demand
    ):
        planner = HeuristicPlanner(PARAMS)
        free = planner.plan(pool, wapp)
        capped = planner.plan(pool, wapp, demand=demand)
        capped.hierarchy.validate(strict=True)
        if capped.throughput >= demand:
            assert capped.nodes_used <= free.nodes_used

    @given(pools, app_works)
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, pool, wapp):
        a = HeuristicPlanner(PARAMS).plan(pool, wapp)
        b = HeuristicPlanner(PARAMS).plan(pool, wapp)
        assert a.hierarchy.nodes == b.hierarchy.nodes
        assert a.throughput == b.throughput
