"""Property-based tests on the simulation substrate (hypothesis).

The load-bearing invariants of the DES:

* the engine fires events in (time, schedule-order) — never backwards;
* a serial resource conserves work exactly across any interleaving of
  priorities and preemptions (total busy time == total submitted
  durations once drained, regardless of arrival pattern);
* a resource never runs two things at once (busy time <= elapsed time).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource

# (arrival_delay, duration, priority) triples.
task_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=3.0),
        st.integers(min_value=0, max_value=1),
    ),
    min_size=1,
    max_size=40,
)


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                    max_size=50))
    @settings(max_examples=60)
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired: list[float] = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2,
                    max_size=30))
    @settings(max_examples=40)
    def test_equal_times_fire_in_schedule_order(self, delays):
        sim = Simulator()
        order: list[int] = []
        common = 1.0
        for index, _ in enumerate(delays):
            sim.schedule(common, lambda i=index: order.append(i))
        sim.run()
        assert order == list(range(len(delays)))


class TestResourceProperties:
    @given(task_lists)
    @settings(max_examples=80, deadline=None)
    def test_work_conservation(self, tasks):
        """Total busy time equals total submitted work, for any arrival
        pattern, priority mix, and number of preemptions."""
        sim = Simulator()
        resource = SerialResource(sim, "node")
        done = []
        for arrival, duration, priority in tasks:
            sim.schedule(
                arrival,
                lambda d=duration, p=priority: resource.submit(
                    d, "compute", lambda: done.append(d), priority=p
                ),
            )
        sim.run()
        assert len(done) == len(tasks)
        total = sum(duration for _, duration, _ in tasks)
        assert abs(resource.busy_time - total) < 1e-9 * max(1.0, total)
        assert resource.tasks_done == len(tasks)

    @given(task_lists)
    @settings(max_examples=60, deadline=None)
    def test_no_time_travel_and_no_overcommit(self, tasks):
        sim = Simulator()
        resource = SerialResource(sim, "node")
        for arrival, duration, priority in tasks:
            sim.schedule(
                arrival,
                lambda d=duration, p=priority: resource.submit(
                    d, "compute", priority=p
                ),
            )
        sim.run()
        # A serial resource can never have been busy longer than the
        # clock has advanced.
        assert resource.busy_time <= sim.now + 1e-9

    @given(task_lists)
    @settings(max_examples=60, deadline=None)
    def test_every_task_completes_exactly_once(self, tasks):
        """No interleaving of priorities/preemptions loses or duplicates a
        completion callback."""
        sim = Simulator()
        resource = SerialResource(sim, "node")
        completions: list[int] = []

        for index, (arrival, duration, priority) in enumerate(tasks):
            sim.schedule(
                arrival,
                lambda i=index, d=duration, p=priority: resource.submit(
                    d, "compute", lambda: completions.append(i), priority=p
                ),
            )
        sim.run()
        assert sorted(completions) == list(range(len(tasks)))

    @given(task_lists)
    @settings(max_examples=60, deadline=None)
    def test_high_priority_latency_bounded_by_high_work(self, tasks):
        """A priority-0 item submitted at time t finishes by
        t + (all high-priority work in the system) + (one in-progress
        low item's remainder is preempted, so only its zero-length tail
        matters) — i.e. high work never waits behind *queued* low work."""
        sim = Simulator()
        resource = SerialResource(sim, "node")
        # Saturate with low-priority work first.
        low_total = 0.0
        for _, duration, _ in tasks:
            resource.submit(duration, "compute", priority=1)
            low_total += duration
        finish = []
        high = 0.5
        resource.submit(high, "compute", lambda: finish.append(sim.now))
        sim.run()
        # The high item preempts immediately: done at ~high, not after
        # the queued low backlog.
        assert finish[0] <= high + 1e-9

    @given(task_lists)
    @settings(max_examples=40, deadline=None)
    def test_kind_accounting_sums_to_busy_time(self, tasks):
        sim = Simulator()
        resource = SerialResource(sim, "node")
        kinds = ("send", "recv", "compute")
        for index, (arrival, duration, priority) in enumerate(tasks):
            kind = kinds[index % 3]
            sim.schedule(
                arrival,
                lambda d=duration, k=kind, p=priority: resource.submit(
                    d, k, priority=p
                ),
            )
        sim.run()
        by_kind = sum(resource.kind_time(kind) for kind in kinds)
        assert abs(by_kind - resource.busy_time) < 1e-9
