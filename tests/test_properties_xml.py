"""Property-based round-trip tests for plan serialization (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import Hierarchy
from repro.core.params import LevelSizes, ModelParams
from repro.deploy.plan import DeploymentPlan
from repro.deploy.xml_io import (
    hierarchy_from_xml,
    hierarchy_to_xml,
    plan_from_xml,
    plan_to_xml,
)


@st.composite
def hierarchies(draw) -> Hierarchy:
    """Random strictly-valid deployment trees.

    Construction: start from root + one server; repeatedly either add a
    server under a random agent or grow a new agent (with two servers, so
    validity is maintained at every step).
    """
    h = Hierarchy()
    h.set_root("n0", draw(st.floats(min_value=1.0, max_value=1000.0)))
    h.add_server("n1", draw(st.floats(min_value=1.0, max_value=1000.0)), "n0")
    counter = 2
    steps = draw(st.integers(min_value=0, max_value=12))
    for _ in range(steps):
        agents = h.agents
        agent = agents[draw(st.integers(min_value=0, max_value=len(agents) - 1))]
        power = draw(st.floats(min_value=1.0, max_value=1000.0))
        if draw(st.booleans()):
            h.add_server(f"n{counter}", power, agent)
            counter += 1
        else:
            new_agent = f"n{counter}"
            h.add_agent(new_agent, power, agent)
            counter += 1
            for _ in range(2):
                h.add_server(
                    f"n{counter}",
                    draw(st.floats(min_value=1.0, max_value=1000.0)),
                    new_agent,
                )
                counter += 1
    return h


@st.composite
def model_params(draw) -> ModelParams:
    sizes = st.floats(min_value=1e-8, max_value=10.0)
    return ModelParams(
        wreq=draw(st.floats(min_value=0.0, max_value=5.0)),
        wfix=draw(st.floats(min_value=0.0, max_value=1.0)),
        wsel=draw(st.floats(min_value=0.0, max_value=1.0)),
        wpre=draw(st.floats(min_value=0.0, max_value=5.0)),
        agent_sizes=LevelSizes(sreq=draw(sizes), srep=draw(sizes)),
        server_sizes=LevelSizes(sreq=draw(sizes), srep=draw(sizes)),
        bandwidth=draw(st.floats(min_value=0.1, max_value=1e5)),
    )


class TestHierarchyRoundTrip:
    @given(hierarchies())
    @settings(max_examples=60, deadline=None)
    def test_structure_preserved(self, hierarchy):
        restored = hierarchy_from_xml(hierarchy_to_xml(hierarchy))
        assert restored.nodes == hierarchy.nodes
        assert restored.shape_signature() == hierarchy.shape_signature()
        for node in hierarchy:
            assert restored.role(node) == hierarchy.role(node)
            assert restored.parent(node) == hierarchy.parent(node)
            assert restored.power(node) == pytest.approx(
                hierarchy.power(node), rel=0, abs=0
            )

    @given(hierarchies())
    @settings(max_examples=40, deadline=None)
    def test_restored_tree_is_strictly_valid(self, hierarchy):
        hierarchy_from_xml(hierarchy_to_xml(hierarchy)).validate(strict=True)


class TestPlanRoundTrip:
    @given(hierarchies(), model_params(),
           st.floats(min_value=1e-6, max_value=1e6))
    @settings(max_examples=40, deadline=None)
    def test_plan_round_trip_preserves_prediction(
        self, hierarchy, params, app_work
    ):
        plan = DeploymentPlan(
            hierarchy=hierarchy, params=params, app_work=app_work,
            method="property-test",
        )
        restored = plan_from_xml(plan_to_xml(plan))
        # repr() serialization must preserve floats bit-exactly, so the
        # model prediction is reproducible from the file alone.
        assert restored.predicted_throughput == plan.predicted_throughput
        assert restored.app_work == plan.app_work
        assert restored.params == plan.params
