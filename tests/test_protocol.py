"""Master/executor command protocol, deployment registry, executors.

The PR's distribution contracts:

* wire round-trip — ``commands_to_plan(plan_commands(p, g, e))``
  applies identically to ``p`` across diverse plan pairs
  (property-tested through an actual ``json.dumps``/``loads`` leg);
* the registry — snapshot/restore is exact, generations are dense and
  monotonic, unknown schema versions and corrupted snapshots are
  refused, and "registry truth == middleware truth" after surgery;
* executors — stateless daemons reject stale generations, the
  in-process and process-pool executors produce identical acks, and a
  full controller run is **bit-identical** across ``inline``/``local``/
  ``pool`` with faults and detection enabled (traces included);
* the API edge — ``control_sweep`` refuses executor instances (they
  do not pickle) and sweeps stay serial-vs-pool deterministic with a
  protocol executor configured.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import PlanRequest, PlanningSession
from repro.control import ControlLoop
from repro.control.protocol import (
    EXECUTOR_KINDS,
    PROTOCOL_VERSION,
    InProcessExecutor,
    ProcessExecutor,
    commands_to_plan,
    execute_command,
    make_executor,
    parse_command,
    parse_report,
    plan_commands,
)
from repro.control.registry import (
    SCHEMA_VERSION,
    DeploymentRegistry,
    restore_tree,
    serialize_tree,
    tree_digest,
)
from repro.control.traces import fixture
from repro.core.params import ModelParams
from repro.core.registry import REGISTRY
from repro.deploy.migration import (
    hierarchies_equal,
    plan_migration,
)
from repro.errors import PlanningError, ProtocolError
from repro.middleware.system import MiddlewareSystem
from repro.platforms.pool import NodePool
from repro.sim.engine import Simulator
from repro.units import dgemm_mflop

WORK = dgemm_mflop(200)


def planned(pool, demand=None, seed=0):
    return REGISTRY.plan(
        PlanRequest(pool=pool, app_work=WORK, demand=demand, seed=seed)
    ).hierarchy


@pytest.fixture(scope="module")
def trees():
    """Planner outputs across demand levels — diverse migration pairs."""
    pool = NodePool.uniform_random(14, low=80, high=400, seed=11)
    return [planned(pool)] + [
        planned(pool, demand=d) for d in (30.0, 60.0, 120.0, 240.0)
    ]


def faulty_loop(**overrides):
    """A controller run exercising migrations, faults, and detection."""
    defaults = dict(
        pool=NodePool.uniform_random(10, low=80, high=400, seed=7),
        app_work=200.0,
        trace=fixture("wikipedia_flash"),
        policy="reactive",
        policy_options={"hysteresis": 1, "cooldown": 1},
        epochs=8,
        epoch_duration=2.0,
        seed=5,
        migration="concurrent",
        faults="crash:target=busiest-child,at=8",
        detection="timeout=0.5,retries=1,threshold=3,grace=2",
    )
    defaults.update(overrides)
    return ControlLoop(**defaults)


# ------------------------------------------------------------------ #
# wire round-trip


class TestCommandRoundTrip:
    @given(
        old_index=st.integers(0, 4),
        new_index=st.integers(0, 4),
        generation=st.integers(0, 40),
        epoch=st.integers(0, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_wire_round_trip_applies_identically(
        self, trees, old_index, new_index, generation, epoch
    ):
        """serialize → JSON → parse → rebuild ≡ the original plan."""
        old, new = trees[old_index], trees[new_index]
        plan = plan_migration(old, new)
        if plan.is_noop:
            return
        commands = plan_commands(plan, generation, epoch)
        # The actual wire leg: bytes, not objects.
        wires = json.loads(
            json.dumps([command.to_wire() for command in commands])
        )
        parsed = tuple(parse_command(wire) for wire in wires)
        assert parsed == commands
        rebuilt = commands_to_plan(parsed)
        assert rebuilt.kind == plan.kind
        assert hierarchies_equal(rebuilt.apply(old), plan.apply(old))
        assert hierarchies_equal(rebuilt.apply(old), new)

    def test_command_ids_and_waves_are_deterministic(self, trees):
        plan = plan_migration(trees[1], trees[3])
        commands = plan_commands(plan, 7, 3)
        assert [c.command_id for c in commands] == [
            f"g7e3r{i}" for i in range(len(plan.regions))
        ]
        assert all(c.generation == 7 and c.epoch == 3 for c in commands)
        # Wave indices match the concurrent schedule exactly.
        wave_of = {}
        for index, wave in enumerate(plan.concurrent_schedule()):
            for region in wave:
                wave_of[str(region.root)] = index
        assert {c.root: c.wave for c in commands} == wave_of

    def test_commands_to_plan_rejects_empty_and_mixed_batches(self, trees):
        with pytest.raises(ProtocolError):
            commands_to_plan(())
        a = plan_commands(plan_migration(trees[0], trees[1]), 0, 0)
        b = plan_commands(plan_migration(trees[0], trees[1]), 1, 0)
        with pytest.raises(ProtocolError, match="inconsistent"):
            commands_to_plan(a[:1] + b[1:] if len(a) > 1 else a + b)

    def test_parse_command_rejects_bad_messages(self, trees):
        plan = plan_migration(trees[0], trees[2])
        wire = plan_commands(plan, 0, 0)[0].to_wire()
        with pytest.raises(ProtocolError, match="version"):
            parse_command({**wire, "version": PROTOCOL_VERSION + 1})
        missing = dict(wire)
        del missing["steps"]
        with pytest.raises(ProtocolError, match="missing"):
            parse_command(missing)
        with pytest.raises(ProtocolError, match="unexpected"):
            parse_command({**wire, "surprise": 1})
        with pytest.raises(ProtocolError):
            parse_command("not a dict")

    def test_parse_report_rejects_bad_messages(self):
        wire = {
            "version": PROTOCOL_VERSION,
            "command_id": "g0e0r0",
            "root": "n-1",
            "generation": 0,
            "status": "applied",
            "applied": 3,
            "digest": "0" * 16,
        }
        assert parse_report(wire).command_id == "g0e0r0"
        with pytest.raises(ProtocolError, match="version"):
            parse_report({**wire, "version": 99})
        short = dict(wire)
        del short["digest"]
        with pytest.raises(ProtocolError, match="missing"):
            parse_report(short)
        with pytest.raises(ProtocolError, match="unexpected"):
            parse_report({**wire, "extra": True})


# ------------------------------------------------------------------ #
# the registry


def registry_signature(entry):
    """``(name, parent, role)`` rows of a committed generation."""
    return tuple(
        sorted((name, parent, role) for name, parent, role, _ in entry.tree)
    )


class TestRegistry:
    def test_tree_serialize_restore_round_trip(self, trees):
        for tree in trees:
            rows = serialize_tree(tree)
            assert json.loads(json.dumps(list(rows))) == [
                list(row) for row in rows
            ]
            assert hierarchies_equal(restore_tree(rows), tree)

    def test_digest_is_order_independent_content_hash(self, trees):
        rows = serialize_tree(trees[0])
        shuffled = list(rows)
        random.Random(3).shuffle(shuffled)
        assert tree_digest(tuple(shuffled)) == tree_digest(rows)
        assert tree_digest(trees[0]) == tree_digest(rows)
        assert tree_digest(trees[0]) != tree_digest(trees[1])

    def test_generations_are_dense_and_monotonic(self, trees):
        registry = DeploymentRegistry()
        assert registry.generation == -1
        assert len(registry) == 0
        with pytest.raises(ProtocolError, match="empty"):
            registry.current()
        for index, tree in enumerate(trees):
            entry = registry.commit(tree, "replan", epoch=index)
            assert entry.generation == index
            assert registry.generation == index
        generations = [entry.generation for entry in registry.entries]
        assert generations == list(range(len(trees)))
        assert hierarchies_equal(registry.current(), trees[-1])
        with pytest.raises(ProtocolError):
            registry.entry(len(trees))

    def test_snapshot_restore_is_exact(self, trees):
        registry = DeploymentRegistry()
        registry.commit(trees[0], "initial")
        registry.commit(trees[1], "replan", epoch=2, command_ids=("g0e2r0",))
        registry.commit(trees[2], "repair", epoch=5)
        snapshot = registry.snapshot()
        # JSON-safe and byte-stable through an actual encode/decode leg.
        assert json.loads(json.dumps(snapshot)) == snapshot
        restored = DeploymentRegistry.restore(
            json.loads(json.dumps(snapshot))
        )
        assert restored == registry
        assert restored.entries == registry.entries
        assert hierarchies_equal(restored.current(), trees[2])
        assert restored.entry(1).command_ids == ("g0e2r0",)
        # A restarted master keeps numbering where it left off.
        entry = restored.commit(trees[3], "replan", epoch=7)
        assert entry.generation == 3

    def test_restore_refuses_unknown_schema(self, trees):
        registry = DeploymentRegistry()
        registry.commit(trees[0], "initial")
        snapshot = registry.snapshot()
        with pytest.raises(ProtocolError, match="schema"):
            DeploymentRegistry.restore(
                {**snapshot, "schema": SCHEMA_VERSION + 1}
            )
        with pytest.raises(ProtocolError):
            DeploymentRegistry.restore("not a dict")

    def test_restore_refuses_corruption(self, trees):
        registry = DeploymentRegistry()
        registry.commit(trees[0], "initial")
        registry.commit(trees[1], "replan", epoch=1)
        snapshot = registry.snapshot()
        tampered = json.loads(json.dumps(snapshot))
        tampered["entries"][1]["tree"][0][3] += 1.0  # nudge a power
        with pytest.raises(ProtocolError, match="digest"):
            DeploymentRegistry.restore(tampered)
        sparse = json.loads(json.dumps(snapshot))
        sparse["entries"][1]["generation"] = 5
        with pytest.raises(ProtocolError, match="dense"):
            DeploymentRegistry.restore(sparse)
        header = json.loads(json.dumps(snapshot))
        header["generation"] = 9
        with pytest.raises(ProtocolError, match="header"):
            DeploymentRegistry.restore(header)

    def test_registry_truth_matches_middleware_truth(self, trees):
        """The committed tree is what the live platform actually runs."""
        old = trees[0]
        new = old.copy()
        new.add_server("spliced-1", 123.0, new.agents[0])  # pure growth
        registry = DeploymentRegistry()
        registry.commit(old, "initial")
        sim = Simulator()
        system = MiddlewareSystem(sim, old, ModelParams(), WORK)
        assert system.placement_signature() == registry_signature(
            registry.entry(0)
        )
        plan = plan_migration(old, new)
        assert plan.is_live
        system.apply_migration(plan.steps)
        registry.commit(plan.apply(old), "replan", epoch=0)
        assert system.placement_signature() == registry_signature(
            registry.entry(1)
        )


# ------------------------------------------------------------------ #
# executors


class TestExecutors:
    def make_batch(self, trees, old_index=0, new_index=2):
        old, new = trees[old_index], trees[new_index]
        registry = DeploymentRegistry()
        registry.commit(old, "initial")
        plan = plan_migration(old, new)
        commands = plan_commands(plan, registry.generation, 0)
        wires = [command.to_wire() for command in commands]
        return registry, plan, commands, wires

    def test_daemon_rejects_stale_generation(self, trees):
        registry, _, commands, wires = self.make_batch(trees)
        with pytest.raises(ProtocolError, match="out of range"):
            execute_command(registry.snapshot(), wires, len(wires))
        registry.commit(trees[1], "replan", epoch=1)  # registry moved on
        with pytest.raises(ProtocolError, match="re-sync"):
            execute_command(registry.snapshot(), wires, 0)

    def test_daemon_acks_match_master_replay(self, trees):
        registry, plan, commands, wires = self.make_batch(trees)
        snapshot = registry.snapshot()
        replay = registry.current()
        from repro.deploy.migration import apply_steps

        for index, command in enumerate(commands):
            report = parse_report(execute_command(snapshot, wires, index))
            assert report.command_id == command.command_id
            assert report.root == command.root
            assert report.generation == registry.generation
            assert report.status == "applied"
            apply_steps(replay, command.steps)
            assert report.digest == tree_digest(replay)
        assert hierarchies_equal(replay, plan.apply(registry.current()))

    def test_in_process_and_pool_executors_agree(self, trees):
        registry, _, _, wires = self.make_batch(trees)
        snapshot = registry.snapshot()
        local = InProcessExecutor()
        pool = ProcessExecutor(workers=2)
        try:
            serial = local.execute(snapshot, wires)
            fanned = pool.execute(snapshot, wires)
        finally:
            pool.close()
        assert serial == fanned
        assert [parse_report(wire).status for wire in serial] == (
            ["applied"] * len(wires)
        )

    def test_make_executor_kinds(self):
        assert make_executor("inline") is None
        local = make_executor("local")
        assert isinstance(local, InProcessExecutor)
        pool = make_executor("pool", workers=1)
        assert isinstance(pool, ProcessExecutor)
        pool.close()
        with pytest.raises(ProtocolError, match="unknown executor"):
            make_executor("carrier-pigeon")
        assert set(EXECUTOR_KINDS) == {"inline", "local", "pool"}


# ------------------------------------------------------------------ #
# the loop, end to end


class TestLoopBitIdentity:
    def test_timeline_identical_across_all_executor_kinds(self):
        """Same seed ⇒ bit-identical timeline, faults and detection on."""
        timelines = {
            kind: faulty_loop(executor=kind).run() for kind in EXECUTOR_KINDS
        }
        assert timelines["local"] == timelines["inline"]
        assert timelines["pool"] == timelines["inline"]

    def test_timeline_identical_for_live_migration_mode(self):
        inline = faulty_loop(migration="live", executor="inline").run()
        local = faulty_loop(migration="live", executor="local").run()
        assert local == inline

    def test_registry_records_the_run(self):
        loop = faulty_loop(executor="local")
        loop.run()
        registry = loop.deployment_registry
        entries = registry.entries
        assert entries[0].cause == "initial"
        assert entries[0].epoch == -1
        assert [e.generation for e in entries] == list(range(len(entries)))
        # The final committed generation IS the final deployment.
        assert hierarchies_equal(registry.current(), loop.final_hierarchy)
        # Protocol-dispatched redeploys carry their command ids.
        plan_causes = {"improve", "replan", "repair", "evict"}
        dispatched = [e for e in entries if e.cause in plan_causes]
        assert dispatched, "run was expected to redeploy at least once"
        assert any(e.command_ids for e in dispatched)
        for entry in dispatched:
            for command_id in entry.command_ids:
                # Commands are stamped with the *base* generation.
                assert command_id.startswith(f"g{entry.generation - 1}e")
        # The fault path commits too: the confirmed excision and the
        # repair that heals it ("crash" would be the oracle-mode cause).
        assert {"detection", "repair"} <= {e.cause for e in entries}
        # Snapshot/restore of the finished run's registry is exact.
        assert DeploymentRegistry.restore(registry.snapshot()) == registry

    def test_inline_registry_matches_protocol_registry(self):
        """Same generations, causes, and trees — with or without the
        protocol in the act path.  (``command_ids`` differ by design:
        inline mode dispatches no commands.)"""
        inline = faulty_loop(executor="inline")
        local = faulty_loop(executor="local")
        inline.run()
        local.run()

        def shape(registry):
            return [
                (e.generation, e.cause, e.epoch, e.tree, e.digest)
                for e in registry.entries
            ]

        assert shape(inline.deployment_registry) == shape(
            local.deployment_registry
        )
        assert all(
            not e.command_ids for e in inline.deployment_registry.entries
        )

    def test_local_and_pool_traces_byte_identical(self):
        local = faulty_loop(executor="local", obs=True)
        pool = faulty_loop(executor="pool", obs=True)
        local.run()
        pool.run()
        local_jsonl = local.obs.tracer.to_jsonl()
        assert local_jsonl == pool.obs.tracer.to_jsonl()
        records = [json.loads(line) for line in local_jsonl.splitlines()]
        protocol = [r for r in records if r.get("cat") == "protocol"]
        assert any(r["name"] == "dispatch" for r in protocol
                   if r["type"] == "event")
        commands = [r for r in protocol if r["type"] == "span"
                    and r["name"].startswith("command:")]
        acks = [r for r in protocol if r["type"] == "event"
                and r["name"].startswith("ack:")]
        flows = [r for r in protocol if r["type"] == "flow"]
        assert commands and len(acks) == len(commands)
        assert len(flows) == 2 * len(commands)
        # Every command span correlates with exactly one ack.
        assert {r["args"]["command_id"] for r in commands} == (
            {r["args"]["command_id"] for r in acks}
        )

    def test_inline_mode_emits_no_protocol_records(self):
        loop = faulty_loop(executor="inline", obs=True)
        loop.run()
        records = [
            json.loads(line)
            for line in loop.obs.tracer.to_jsonl().splitlines()
        ]
        assert not [r for r in records if r.get("cat") == "protocol"]

    def test_loop_validates_executor_arguments(self):
        from repro.errors import ControlError

        with pytest.raises(ControlError, match="unknown executor"):
            faulty_loop(executor="smoke-signals")
        with pytest.raises(ControlError, match="execute"):
            faulty_loop(executor=object())
        with pytest.raises(ControlError, match="executor_workers"):
            faulty_loop(executor="pool", executor_workers=0)


# ------------------------------------------------------------------ #
# the API edge


class TestSweepIntegration:
    def sweep(self, parallel):
        session = PlanningSession()
        return session.control_sweep(
            pool=NodePool.uniform_random(10, low=80, high=400, seed=7),
            app_work=WORK,
            traces=["wikipedia_flash"],
            policies=["reactive"],
            seeds=[5, 6],
            policy_options={"reactive": {"hysteresis": 1, "cooldown": 1}},
            parallel=parallel,
            epochs=6,
            epoch_duration=2.0,
            migration="concurrent",
            executor="local",
        )

    def test_sweep_rejects_unpicklable_executors(self):
        session = PlanningSession()
        for bad in (InProcessExecutor(), "smoke-signals"):
            with pytest.raises(PlanningError, match="kind string"):
                session.control_sweep(
                    pool=NodePool.uniform_random(6, low=80, high=400, seed=7),
                    app_work=WORK,
                    traces=["wikipedia_flash"],
                    executor=bad,
                )

    def test_sweep_serial_vs_pool_identical_with_executor(self):
        serial = self.sweep(parallel=False)
        pooled = self.sweep(parallel=True)
        assert len(serial) == len(pooled) == 2
        assert [c.timeline for c in serial] == [c.timeline for c in pooled]
