"""Iterative deployment improvement (prior-work mechanism [6,7])."""

import pytest

from repro.core.baselines import balanced_deployment, star_deployment
from repro.core.heuristic import HeuristicPlanner
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.errors import PlanningError
from repro.extensions.redeploy import improve_deployment
from repro.platforms.node import Node
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

PARAMS = ModelParams()


def spares(count: int, power: float = 265.0) -> list[Node]:
    return [Node(power=power, name=f"spare-{i:02d}") for i in range(count)]


class TestMoves:
    def test_service_bound_adds_servers(self):
        pool = NodePool.homogeneous(3, 265.0)
        h = star_deployment(pool)  # 1 agent + 2 servers, DGEMM 200: service-bound
        result = improve_deployment(h, spares(4), PARAMS, dgemm_mflop(200))
        assert result.final_throughput > result.initial_throughput * 1.5
        assert any(a.move == "add-server" for a in result.actions)
        assert result.hierarchy.shape_signature()[2] > 2  # more servers
        result.hierarchy.validate(strict=True)

    def test_scheduling_bound_splits_agent(self):
        # A big star on a tiny-ish grain: the root is the bottleneck.
        pool = NodePool.homogeneous(40, 265.0)
        h = star_deployment(pool)
        wapp = dgemm_mflop(120)  # scheduling-bound at degree 39
        before = hierarchy_throughput(h, PARAMS, wapp)
        assert before.is_scheduling_bound
        result = improve_deployment(h, spares(6), PARAMS, wapp)
        assert result.final_throughput > result.initial_throughput
        assert any(a.move == "split-agent" for a in result.actions)
        assert len(result.hierarchy.agents) > 1
        result.hierarchy.validate(strict=True)

    def test_rebalance_without_spares(self):
        # Unbalanced two-agent tree, no spares: children must migrate.
        pool = NodePool.homogeneous(20, 265.0)
        h = balanced_deployment(pool, middle_agents=2)
        # Skew it: move children from agent-2 to agent-1.
        mids = [a for a in h.agents if a != h.root]
        donor, receiver = mids[1], mids[0]
        for child in list(h.children(donor))[:-2]:
            h.reattach(child, receiver)
        wapp = dgemm_mflop(150)
        before = hierarchy_throughput(h, PARAMS, wapp)
        result = improve_deployment(h, [], PARAMS, wapp)
        if before.is_scheduling_bound:
            assert result.final_throughput >= before.throughput
        result.hierarchy.validate(strict=True)

    def test_replace_slow_floor_server(self):
        # One crawling server caps the scheduling floor; a fast spare
        # should replace it.
        h = star_deployment(NodePool.homogeneous(4, 265.0))
        slow = Node(power=0.1, name="slug")
        h.add_server(slow.name, slow.power, h.root)
        wapp = dgemm_mflop(200)
        report = hierarchy_throughput(h, PARAMS, wapp)
        assert report.is_scheduling_bound
        assert report.limiting_node == "slug"
        result = improve_deployment(h, spares(1), PARAMS, wapp)
        moves = [a.move for a in result.actions]
        assert "replace-server" in moves or "add-server" in moves
        assert result.final_throughput > result.initial_throughput
        result.hierarchy.validate(strict=True)


class TestLoopProperties:
    def test_never_regresses(self):
        pool = NodePool.uniform_random(15, low=80, high=400, seed=4)
        h = star_deployment(pool)
        for size in (100, 310, 1000):
            result = improve_deployment(
                h, spares(5), PARAMS, dgemm_mflop(size)
            )
            assert result.final_throughput >= result.initial_throughput - 1e-9

    def test_actions_never_regress(self):
        pool = NodePool.homogeneous(3, 265.0)
        result = improve_deployment(
            star_deployment(pool), spares(8), PARAMS, dgemm_mflop(200)
        )
        for action in result.actions:
            # Strict gains, except unblocking moves which hold rho flat
            # while raising scheduling power.
            assert action.throughput_after >= action.throughput_before * (
                1 - 1e-9
            )
        assert result.final_throughput > result.initial_throughput

    def test_original_hierarchy_untouched(self):
        pool = NodePool.homogeneous(3, 265.0)
        h = star_deployment(pool)
        shape = h.shape_signature()
        improve_deployment(h, spares(5), PARAMS, dgemm_mflop(200))
        assert h.shape_signature() == shape

    def test_spares_accounted(self):
        pool = NodePool.homogeneous(3, 265.0)
        result = improve_deployment(
            star_deployment(pool), spares(5), PARAMS, dgemm_mflop(200)
        )
        consuming = {"add-server", "split-agent", "replace-server"}
        used = sum(1 for a in result.actions if a.move in consuming)
        assert len(result.spares_left) == 5 - used

    def test_improvement_approaches_from_scratch_planner(self):
        """Improving a bad star with the full node budget must come close
        to what planning from scratch achieves — the paper's motivation
        for comparing the two workflows."""
        all_nodes = NodePool.uniform_random(30, low=80, high=400, seed=9)
        initial_pool = all_nodes.take(10)
        spare_nodes = list(all_nodes)[10:]
        wapp = dgemm_mflop(310)
        improved = improve_deployment(
            star_deployment(initial_pool.sorted_by_power()),
            spare_nodes, PARAMS, wapp,
        )
        scratch = HeuristicPlanner(PARAMS).plan(all_nodes, wapp)
        assert improved.final_throughput >= 0.85 * scratch.throughput

    def test_improvement_factor_property(self):
        pool = NodePool.homogeneous(3, 265.0)
        result = improve_deployment(
            star_deployment(pool), spares(3), PARAMS, dgemm_mflop(200)
        )
        assert result.improvement_factor == pytest.approx(
            result.final_throughput / result.initial_throughput
        )


class TestValidation:
    def test_name_collision_rejected(self):
        pool = NodePool.homogeneous(3, 265.0)
        clash = [Node(power=1.0, name="node-1")]
        with pytest.raises(PlanningError):
            improve_deployment(star_deployment(pool), clash, PARAMS, 1.0)

    def test_bad_app_work_rejected(self):
        pool = NodePool.homogeneous(3, 265.0)
        with pytest.raises(PlanningError):
            improve_deployment(star_deployment(pool), [], PARAMS, 0.0)

    def test_invalid_hierarchy_rejected(self):
        from repro.core.hierarchy import Hierarchy

        h = Hierarchy()
        h.set_root("r", 1.0)
        with pytest.raises(Exception):
            improve_deployment(h, [], PARAMS, 1.0)
