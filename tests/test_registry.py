"""The planner registry and typed per-planner options."""

import dataclasses
import warnings

import pytest

from repro.api import PlanRequest, PlanningSession
from repro.core.optimal import MAX_EXHAUSTIVE_NODES
from repro.core.params import DEFAULT_PARAMS
from repro.core.registry import (
    CAP_AUTOMATIC,
    CAP_BASELINE,
    CAP_DEMAND,
    CAP_EXTENSION,
    REGISTRY,
    BalancedOptions,
    ChainOptions,
    Deployment,
    HeuristicOptions,
    PlannerOptions,
    PlannerRegistry,
    default_middle_agents,
    register_planner,
)
from repro.core.planner import plan_deployment
from repro.errors import PlanningError
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@dataclasses.dataclass(frozen=True)
class _NoOptions(PlannerOptions):
    pass


class _StubPlanner:
    name = "stub"
    capabilities = frozenset({CAP_AUTOMATIC})
    options_type = _NoOptions

    def plan(self, request):  # pragma: no cover - never called in tests
        raise NotImplementedError


class TestRegistry:
    def test_register_and_get(self):
        registry = PlannerRegistry()
        registry.register(_StubPlanner())
        assert registry.get("stub").name == "stub"
        assert "stub" in registry
        assert registry.available() == ("stub",)

    def test_duplicate_name_raises(self):
        registry = PlannerRegistry()
        registry.register(_StubPlanner())
        with pytest.raises(PlanningError, match="already registered"):
            registry.register(_StubPlanner())

    def test_duplicate_allowed_with_replace(self):
        registry = PlannerRegistry()
        first, second = _StubPlanner(), _StubPlanner()
        registry.register(first)
        registry.register(second, replace=True)
        assert registry.get("stub") is second

    def test_unknown_planner_error_lists_available(self):
        with pytest.raises(PlanningError) as excinfo:
            REGISTRY.get("oracle")
        message = str(excinfo.value)
        for name in REGISTRY.available():
            assert name in message

    def test_incomplete_planner_rejected(self):
        class Sloppy:
            name = "sloppy"

        with pytest.raises(PlanningError, match="Planner protocol"):
            PlannerRegistry().register(Sloppy())

    def test_decorator_registers_into_custom_registry(self):
        registry = PlannerRegistry()

        @register_planner(registry=registry)
        class Decorated:
            name = "decorated"
            capabilities = frozenset({CAP_BASELINE})
            options_type = _NoOptions

            def plan(self, request):  # pragma: no cover
                raise NotImplementedError

        assert "decorated" in registry
        assert "decorated" not in REGISTRY.available()

    def test_global_registry_has_all_nine_planners(self):
        assert set(REGISTRY.available()) == {
            "heuristic", "homogeneous", "exhaustive",
            "star", "balanced", "chain",
            "hetcomm", "multiapp", "redeploy",
        }

    def test_extensions_are_capability_flagged(self):
        for name in ("hetcomm", "multiapp", "redeploy"):
            assert CAP_EXTENSION in REGISTRY.get(name).capabilities
        for name in ("heuristic", "star", "balanced"):
            assert CAP_EXTENSION not in REGISTRY.get(name).capabilities


class TestTypedOptions:
    def test_eager_validation_with_actionable_message(self):
        with pytest.raises(PlanningError, match="fixed_point"):
            HeuristicOptions(strategy="bogus")
        with pytest.raises(PlanningError, match="patience"):
            HeuristicOptions(patience=0)
        with pytest.raises(PlanningError, match="middle agent"):
            BalancedOptions(middle_agents=0)
        with pytest.raises(PlanningError, match="agent"):
            ChainOptions(agents=0)

    def test_coerce_converts_cli_strings(self):
        options = HeuristicOptions.coerce(
            {"strategy": "incremental", "patience": "2",
             "allow_promotion": "false"}
        )
        assert options.strategy == "incremental"
        assert options.patience == 2
        assert options.allow_promotion is False

    def test_coerce_unknown_key_lists_valid_options(self):
        with pytest.raises(PlanningError) as excinfo:
            HeuristicOptions.coerce({"wibble": "1"})
        message = str(excinfo.value)
        assert "wibble" in message
        assert "strategy" in message

    def test_coerce_resolves_runtime_annotations(self):
        # A third-party options class defined without
        # `from __future__ import annotations` must still coerce strings.
        @dataclasses.dataclass(frozen=True)
        class ThirdParty(PlannerOptions):
            hints: int = 3
            verbose: bool = False

        options = ThirdParty.coerce({"hints": "5", "verbose": "true"})
        assert options.hints == 5
        assert options.verbose is True

    def test_coerce_bad_value_names_field_and_type(self):
        with pytest.raises(PlanningError, match="patience"):
            HeuristicOptions.coerce({"patience": "soon"})

    def test_wrong_options_type_rejected(self):
        with pytest.raises(PlanningError, match="HeuristicOptions"):
            REGISTRY.resolve_options("heuristic", BalancedOptions())

    def test_resolve_defaults_and_mappings(self):
        assert REGISTRY.resolve_options("chain", None) == ChainOptions()
        assert REGISTRY.resolve_options(
            "chain", {"agents": "3"}
        ) == ChainOptions(agents=3)


class TestDefaultMiddleAgents:
    def test_paper_shape_on_200_nodes(self):
        pool = NodePool.homogeneous(200, 265.0)
        assert default_middle_agents(pool) == 14

    def test_floor_of_one(self):
        assert default_middle_agents(NodePool.homogeneous(2, 265.0)) == 1

    def test_cli_and_planner_agree(self):
        # The CLI compare path and the balanced planner default both go
        # through default_middle_agents — plan through each and compare.
        pool = NodePool.uniform_random(14, low=100, high=400, seed=5)
        session = PlanningSession()
        via_default = session.plan(
            pool=pool, app_work=dgemm_mflop(200), method="balanced"
        )
        via_explicit = session.plan(
            pool=pool, app_work=dgemm_mflop(200), method="balanced",
            options=BalancedOptions(middle_agents=default_middle_agents(pool)),
        )
        assert (
            via_default.hierarchy.describe()
            == via_explicit.hierarchy.describe()
        )


class TestEveryPlannerOnPoolSweep:
    """Property-style sweep: all registered planners yield valid trees."""

    POOLS = [
        NodePool.uniform_random(8, low=80, high=400, seed=seed)
        for seed in (1, 2)
    ] + [
        NodePool.uniform_random(14, low=80, high=400, seed=3),
        NodePool.homogeneous(10, 265.0),
        NodePool.clustered((4, 4, 4), (350.0, 200.0, 90.0)),
    ]

    @pytest.mark.parametrize("method", sorted(REGISTRY.available()))
    @pytest.mark.parametrize("pool_index", range(len(POOLS)))
    def test_planner_produces_strictly_valid_hierarchy(
        self, method, pool_index
    ):
        pool = self.POOLS[pool_index]
        if method == "exhaustive" and len(pool) > MAX_EXHAUSTIVE_NODES:
            pytest.skip("exhaustive search is capped to small pools")
        request = PlanRequest(
            pool=pool,
            app_work=dgemm_mflop(150),
            # multiapp derives a single application from the demand
            demand=10.0 if method == "multiapp" else None,
            method=method,
        )
        deployment = REGISTRY.plan(request)
        deployment.hierarchy.validate(strict=True)
        assert deployment.method == method
        assert deployment.throughput > 0
        assert isinstance(deployment, Deployment)


class TestDeprecatedShim:
    def test_plan_deployment_warns(self):
        pool = NodePool.uniform_random(10, low=100, high=400, seed=4)
        with pytest.warns(DeprecationWarning, match="PlanningSession"):
            plan_deployment(pool, dgemm_mflop(200))

    @pytest.mark.parametrize(
        "method,options",
        [
            ("heuristic", {}),
            ("heuristic", {"strategy": "incremental", "patience": 2}),
            ("heuristic", {"agent_selection": "windowed"}),
            ("homogeneous", {"spanning_only": True}),
            ("star", {}),
            ("balanced", {"middle_agents": 3}),
            ("chain", {"agents": 2}),
        ],
    )
    def test_shim_matches_new_api_exactly(self, method, options):
        pool = NodePool.uniform_random(16, low=100, high=400, seed=9)
        wapp = dgemm_mflop(250)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = plan_deployment(pool, wapp, method=method, **options)
        modern = PlanningSession().plan(
            PlanRequest(
                pool=pool, app_work=wapp, method=method,
                options=options or None,
            )
        )
        assert legacy.hierarchy.describe() == modern.hierarchy.describe()
        assert legacy.throughput == pytest.approx(modern.throughput)
        assert legacy.report.bottleneck == modern.report.bottleneck
        assert legacy.params == DEFAULT_PARAMS

    def test_shim_matches_new_api_with_demand(self):
        pool = NodePool.uniform_random(16, low=100, high=400, seed=9)
        wapp = dgemm_mflop(250)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = plan_deployment(pool, wapp, demand=20.0)
        modern = PlanningSession().plan(
            pool=pool, app_work=wapp, demand=20.0
        )
        assert legacy.hierarchy.describe() == modern.hierarchy.describe()
        assert legacy.throughput == pytest.approx(modern.throughput)
