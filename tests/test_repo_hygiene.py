"""Repository hygiene: examples and benchmarks stay importable.

Examples and benchmark files are exercised manually / by the benchmark
runner; this guard keeps them from silently rotting when the library API
moves (compile + import-resolution check, no execution)."""

import ast
import py_compile
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT_DIRS = ("examples", "benchmarks")


def _scripts() -> list[Path]:
    out: list[Path] = []
    for directory in SCRIPT_DIRS:
        out.extend(sorted((REPO / directory).glob("*.py")))
    return out


@pytest.mark.parametrize("path", _scripts(), ids=lambda p: p.name)
def test_script_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", _scripts(), ids=lambda p: p.name)
def test_script_imports_resolve(path):
    """Every `from repro...` import in a script names a real attribute."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            module = __import__(node.module, fromlist=["_"])
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} is gone"
                )


def test_every_public_module_has_docstring():
    src = REPO / "src" / "repro"
    missing = []
    for path in src.rglob("*.py"):
        tree = ast.parse(path.read_text())
        if ast.get_docstring(tree) is None and path.name != "__init__.py":
            missing.append(str(path.relative_to(REPO)))
        # Package __init__ files must be documented too, except empty ones.
        if path.name == "__init__.py" and path.read_text().strip():
            if ast.get_docstring(tree) is None:
                missing.append(str(path.relative_to(REPO)))
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_function_and_class_documented():
    src = REPO / "src" / "repro"
    undocumented = []
    for path in src.rglob("*.py"):
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    undocumented.append(
                        f"{path.relative_to(REPO)}::{node.name}"
                    )
    assert not undocumented, f"missing docstrings: {undocumented}"
