"""Discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 2.0


class TestHeapCompaction:
    @staticmethod
    def churn(sim, rounds=2000, keep_every=10):
        """Schedule a storm of events, cancelling all but every k-th."""
        fired = []
        for i in range(rounds):
            event = sim.schedule(
                1.0 + (i % 7) * 0.25, lambda i=i: fired.append((sim.now, i))
            )
            if i % keep_every:
                event.cancel()
        return fired

    def test_compaction_bounds_dead_entries(self, monkeypatch):
        sim = Simulator()
        monkeypatch.setattr(Simulator, "COMPACT_MIN_SIZE", 64)
        self.churn(sim)
        # 90% of the 2000 events were cancelled; lazy deletion alone would
        # leave them all queued.
        assert sim.heap_compactions > 0
        assert sim.pending < 500

    def test_compaction_preserves_firing_order(self, monkeypatch):
        lazy = Simulator()
        monkeypatch.setattr(lazy, "COMPACT_MIN_SIZE", 10**9)  # never compact
        lazy_fired = self.churn(lazy)
        lazy.run()

        compacting = Simulator()
        monkeypatch.setattr(compacting, "COMPACT_MIN_SIZE", 32)
        compacting_fired = self.churn(compacting)
        compacting.run()

        assert compacting.heap_compactions > 0
        assert compacting_fired == lazy_fired
        assert compacting.now == lazy.now
        assert compacting.events_processed == lazy.events_processed

    def test_cancel_is_idempotent_in_count(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim._cancelled_in_heap == 1

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        for _ in range(100):
            sim.schedule(1.0, lambda: None).cancel()
        assert sim.heap_compactions == 0
        sim.run()
        assert sim.events_processed == 0


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run_until(6.0)
        assert fired == [1, 5]

    def test_cannot_run_to_the_past(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_event_budget_enforced(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.1, reschedule)

        sim.schedule(0.1, reschedule)
        with pytest.raises(SimulationError):
            sim.run_until(1e9, max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_empty_run_is_noop(self):
        sim = Simulator()
        sim.run()
        assert sim.now == 0.0
        assert not sim.step()
