"""M(r,s,w) serial resource with priority preemption."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def res(sim) -> SerialResource:
    return SerialResource(sim, "node")


class TestSerialExecution:
    def test_tasks_run_back_to_back(self, sim, res):
        done = []
        res.submit(1.0, "compute", lambda: done.append(sim.now))
        res.submit(2.0, "compute", lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 3.0]

    def test_no_internal_parallelism(self, sim, res):
        # send + recv + compute serialize: the model's core assumption.
        done = []
        res.submit(1.0, "send", lambda: done.append(sim.now))
        res.submit(1.0, "recv", lambda: done.append(sim.now))
        res.submit(1.0, "compute", lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 2.0, 3.0]

    def test_zero_duration_task(self, sim, res):
        done = []
        res.submit(0.0, "send", lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_callback_optional(self, sim, res):
        res.submit(1.0, "compute")
        sim.run()
        assert res.tasks_done == 1

    def test_rejects_bad_inputs(self, res):
        with pytest.raises(SimulationError):
            res.submit(-1.0, "compute")
        with pytest.raises(SimulationError):
            res.submit(1.0, "think")
        with pytest.raises(SimulationError):
            res.submit(1.0, "compute", priority=2)


class TestAccounting:
    def test_busy_time_accumulates(self, sim, res):
        res.submit(1.5, "compute")
        res.submit(0.5, "send")
        sim.run()
        assert res.busy_time == pytest.approx(2.0)
        assert res.kind_time("compute") == pytest.approx(1.5)
        assert res.kind_time("send") == pytest.approx(0.5)

    def test_utilization(self, sim, res):
        res.submit(2.0, "compute")
        sim.run()
        sim.run_until(4.0)
        assert res.utilization() == pytest.approx(0.5)

    def test_backlog_and_queue_length(self, sim, res):
        res.submit(1.0, "compute")
        res.submit(2.0, "compute")
        res.submit(3.0, "compute", priority=1)
        # First task started immediately; two queued.
        assert res.queue_length == 2
        assert res.backlog == pytest.approx(5.0)
        sim.run()
        assert res.queue_length == 0

    def test_unknown_kind_time_rejected(self, res):
        with pytest.raises(SimulationError):
            res.kind_time("nap")


class TestPriorityPreemption:
    def test_high_priority_preempts_low(self, sim, res):
        order = []
        res.submit(10.0, "compute", lambda: order.append(("low", sim.now)),
                   priority=1)
        sim.schedule(2.0, lambda: res.submit(
            1.0, "compute", lambda: order.append(("high", sim.now))))
        sim.run()
        # High runs 2->3; low resumes and finishes at 11 (work conserved).
        assert order == [("high", 3.0), ("low", 11.0)]
        assert res.preemptions == 1

    def test_work_is_conserved_across_preemption(self, sim, res):
        res.submit(4.0, "compute", priority=1)
        sim.schedule(1.0, lambda: res.submit(0.5, "send"))
        sim.schedule(2.0, lambda: res.submit(0.5, "send"))
        sim.run()
        assert res.busy_time == pytest.approx(5.0)
        assert res.kind_time("compute") == pytest.approx(4.0)

    def test_high_does_not_preempt_high(self, sim, res):
        order = []
        res.submit(2.0, "compute", lambda: order.append(("a", sim.now)))
        sim.schedule(1.0, lambda: res.submit(
            0.1, "compute", lambda: order.append(("b", sim.now))))
        sim.run()
        assert order == [("a", 2.0), ("b", 2.1)]
        assert res.preemptions == 0

    def test_resumed_task_runs_before_later_low_work(self, sim, res):
        order = []
        res.submit(4.0, "compute", lambda: order.append("first-low"), priority=1)
        sim.schedule(1.0, lambda: res.submit(1.0, "compute", lambda: order.append("high")))
        sim.schedule(1.5, lambda: res.submit(1.0, "compute", lambda: order.append("second-low"), priority=1))
        sim.run()
        assert order == ["high", "first-low", "second-low"]

    def test_low_priority_runs_when_idle(self, sim, res):
        done = []
        res.submit(1.0, "compute", lambda: done.append(sim.now), priority=1)
        sim.run()
        assert done == [1.0]
