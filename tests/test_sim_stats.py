"""Measurement utilities (counters, windowed rates, traces)."""

import pytest

from repro.errors import SimulationError
from repro.sim.stats import IntervalCounter, WindowedRate
from repro.sim.trace import TraceRecorder


class TestIntervalCounter:
    def test_count_in_window(self):
        counter = IntervalCounter()
        for t in (0.5, 1.5, 2.5, 3.5):
            counter.record(t)
        assert counter.count == 4
        assert counter.count_in(1.0, 3.0) == 2
        assert counter.count_in(0.0, 10.0) == 4

    def test_boundaries_half_open(self):
        counter = IntervalCounter()
        counter.record(1.0)
        counter.record(2.0)
        # (start, end] semantics.
        assert counter.count_in(1.0, 2.0) == 1
        assert counter.count_in(0.0, 1.0) == 1

    def test_rate(self):
        counter = IntervalCounter()
        for t in range(10):
            counter.record(float(t))
        assert counter.rate(0.0, 9.0) == pytest.approx(1.0)

    def test_rejects_time_reversal(self):
        counter = IntervalCounter()
        counter.record(5.0)
        with pytest.raises(SimulationError):
            counter.record(4.0)

    def test_rejects_bad_window(self):
        with pytest.raises(SimulationError):
            IntervalCounter().rate(2.0, 1.0)


class TestWindowedRate:
    def test_series_buckets(self):
        rate = WindowedRate(width=1.0)
        for t in (0.5, 1.2, 1.8, 2.5):
            rate.record(t)
        centers, values = rate.series(0.0, 3.0)
        assert list(values) == [1.0, 2.0, 1.0]
        assert list(centers) == [0.5, 1.5, 2.5]

    def test_steady_rate_trimming(self):
        rate = WindowedRate(width=1.0)
        # Ramp-up bucket (0 completions) then steady 5/s.
        for t in range(1, 10):
            for k in range(5):
                rate.record(t + k / 5.0 + 1e-4)
        trimmed = rate.steady_rate(0.0, 10.0, trim_fraction=0.2)
        untrimmed = rate.steady_rate(0.0, 10.0)
        assert trimmed >= untrimmed

    def test_empty_series(self):
        rate = WindowedRate(width=1.0)
        _, values = rate.series(0.0, 2.0)
        assert list(values) == [0.0, 0.0]
        assert rate.steady_rate(0.0, 2.0) == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            WindowedRate(width=0.0)
        with pytest.raises(SimulationError):
            WindowedRate().series(3.0, 1.0)


class TestTraceRecorder:
    def test_emit_and_query(self):
        trace = TraceRecorder()
        trace.emit(1.0, "msg_sent", "a", request_id=1, size_mb=0.5)
        trace.emit(2.0, "msg_recv", "b", request_id=1, size_mb=0.5)
        trace.emit(3.0, "compute", "b", request_id=2, duration=0.1)
        assert len(trace) == 3
        assert len(trace.by_kind("msg_sent")) == 1
        assert len(trace.by_node("b")) == 2
        assert len(trace.for_request(1)) == 2

    def test_detail_payload(self):
        trace = TraceRecorder()
        trace.emit(0.0, "compute", "n", what="merge", degree=4)
        record = trace.by_kind("compute")[0]
        assert record.detail == {"what": "merge", "degree": 4}

    def test_clear(self):
        trace = TraceRecorder()
        trace.emit(0.0, "x", "n")
        trace.clear()
        assert len(trace) == 0
