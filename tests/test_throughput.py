"""Steady-state throughput model (Eqs. 11-16)."""

import pytest

from repro.core import comm_model, comp_model, throughput
from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.errors import ParameterError


@pytest.fixture
def p() -> ModelParams:
    return ModelParams()


def star(n_servers: int, power: float = 265.0) -> Hierarchy:
    h = Hierarchy()
    h.set_root("agent", power)
    for i in range(n_servers):
        h.add_server(f"s{i}", power, "agent")
    return h


class TestAgentSchedThroughput:
    def test_inverse_of_total_time(self, p):
        rate = throughput.agent_sched_throughput(p, 265.0, 3)
        total = comp_model.agent_comp_time(p, 265.0, 3) + comm_model.agent_comm_time(
            p, 3
        )
        assert rate == pytest.approx(1.0 / total)

    def test_strictly_decreasing_in_degree(self, p):
        rates = [throughput.agent_sched_throughput(p, 265.0, d) for d in range(1, 30)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_increasing_in_power(self, p):
        assert throughput.agent_sched_throughput(
            p, 300.0, 5
        ) > throughput.agent_sched_throughput(p, 100.0, 5)

    def test_rejects_zero_degree(self, p):
        with pytest.raises(ParameterError):
            throughput.agent_sched_throughput(p, 265.0, 0)


class TestServerSchedThroughput:
    def test_inverse_of_prediction_time(self, p):
        rate = throughput.server_sched_throughput(p, 265.0)
        total = p.wpre / 265.0 + comm_model.server_comm_time(p)
        assert rate == pytest.approx(1.0 / total)

    def test_increasing_in_power(self, p):
        assert throughput.server_sched_throughput(
            p, 300.0
        ) > throughput.server_sched_throughput(p, 100.0)


class TestServiceThroughput:
    def test_single_server(self, p):
        rate = throughput.service_throughput(p, [265.0], [16.0])
        comm = p.service_sizes.round_trip / p.bandwidth
        comp = (16.0 + p.wpre) / 265.0
        assert rate == pytest.approx(1.0 / (comm + comp))

    def test_two_servers_nearly_double(self, p):
        one = throughput.service_throughput(p, [265.0], [16.0])
        two = throughput.service_throughput(p, [265.0] * 2, [16.0] * 2)
        assert two / one == pytest.approx(2.0, rel=1e-3)

    def test_monotone_in_server_count(self, p):
        rates = [
            throughput.service_throughput(p, [265.0] * k, [16.0] * k)
            for k in range(1, 20)
        ]
        assert all(a < b for a, b in zip(rates, rates[1:]))


class TestHierarchyThroughput:
    def test_small_grain_is_scheduling_bound(self, p):
        # DGEMM 10x10: the agent limits (the paper's Figure 2 scenario).
        report = throughput.hierarchy_throughput(star(1), p, 2e-3)
        assert report.is_scheduling_bound
        assert report.limiting_node == "agent"

    def test_large_grain_is_service_bound(self, p):
        # DGEMM 200x200: the servers limit (Figure 4 scenario).
        report = throughput.hierarchy_throughput(star(1), p, 16.0)
        assert report.is_service_bound

    def test_adding_server_hurts_when_agent_bound(self, p):
        one = throughput.hierarchy_throughput(star(1), p, 2e-3)
        two = throughput.hierarchy_throughput(star(2), p, 2e-3)
        assert two.throughput < one.throughput

    def test_adding_server_doubles_when_service_bound(self, p):
        one = throughput.hierarchy_throughput(star(1), p, 16.0)
        two = throughput.hierarchy_throughput(star(2), p, 16.0)
        assert two.throughput / one.throughput == pytest.approx(2.0, rel=0.02)

    def test_rho_is_min_of_phases(self, p):
        for wapp in (2e-3, 2.0, 16.0, 2000.0):
            report = throughput.hierarchy_throughput(star(3), p, wapp)
            assert report.throughput == pytest.approx(
                min(report.sched, report.service)
            )

    def test_node_rates_cover_all_nodes(self, p):
        h = star(4)
        report = throughput.hierarchy_throughput(h, p, 16.0)
        assert set(report.node_rates) == set(h.nodes)

    def test_per_server_app_work_mapping(self, p):
        h = star(2)
        scalar = throughput.hierarchy_throughput(h, p, 16.0)
        mapped = throughput.hierarchy_throughput(h, p, {"s0": 16.0, "s1": 16.0})
        assert mapped.throughput == pytest.approx(scalar.throughput)

    def test_missing_server_in_mapping_rejected(self, p):
        with pytest.raises(ParameterError):
            throughput.hierarchy_throughput(star(2), p, {"s0": 16.0})

    def test_limiting_node_is_weakest_agent(self, p):
        h = Hierarchy()
        h.set_root("fast", 500.0)
        h.add_agent("slow", 50.0, "fast")
        h.add_server("x", 500.0, "slow")
        h.add_server("y", 500.0, "slow")
        h.add_server("z", 500.0, "fast")
        report = throughput.hierarchy_throughput(h, p, 2e-3)
        assert report.limiting_node == "slow"


class TestResolveAppWork:
    def test_scalar_expansion(self, p):
        works = throughput.resolve_app_work(star(3), 5.0)
        assert works == [5.0, 5.0, 5.0]

    def test_rejects_nonpositive_scalar(self, p):
        with pytest.raises(ParameterError):
            throughput.resolve_app_work(star(1), 0.0)
