"""Unit conversion helpers."""

import math

import pytest

from repro import units


class TestByteConversions:
    def test_bytes_to_mb_round_trip(self):
        assert units.mb_to_bytes(units.bytes_to_mb(1_000_000)) == pytest.approx(
            1_000_000
        )

    def test_one_megabit_is_125_kilobytes(self):
        assert units.mb_to_bytes(1.0) == pytest.approx(125_000)

    def test_bytes_to_mb_scaling(self):
        assert units.bytes_to_mb(125_000) == pytest.approx(1.0)


class TestPowerConversions:
    def test_gflops_round_trip(self):
        assert units.gflops_from_mflops(
            units.mflops_from_gflops(2.5)
        ) == pytest.approx(2.5)

    def test_mflops_from_gflops(self):
        assert units.mflops_from_gflops(1.0) == 1000.0


class TestTransferTime:
    def test_basic(self):
        assert units.transfer_time(10.0, 100.0) == pytest.approx(0.1)

    def test_zero_size(self):
        assert units.transfer_time(0.0, 100.0) == 0.0

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time(1.0, 0.0)


class TestComputeTime:
    def test_basic(self):
        assert units.compute_time(530.0, 265.0) == pytest.approx(2.0)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            units.compute_time(1.0, -5.0)


class TestDgemmMflop:
    def test_square(self):
        # 2 * n^3 flops.
        assert units.dgemm_mflop(100) == pytest.approx(2.0)

    def test_paper_sizes(self):
        assert units.dgemm_mflop(10) == pytest.approx(2e-3)
        assert units.dgemm_mflop(310) == pytest.approx(2 * 310**3 / 1e6)
        assert units.dgemm_mflop(1000) == pytest.approx(2000.0)

    def test_rectangular(self):
        assert units.dgemm_mflop(10, 20, 30) == pytest.approx(
            2 * 10 * 20 * 30 / 1e6
        )

    def test_defaults_fill_square(self):
        assert units.dgemm_mflop(50) == units.dgemm_mflop(50, 50, 50)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            units.dgemm_mflop(0)
        with pytest.raises(ValueError):
            units.dgemm_mflop(10, -1)

    def test_monotone_in_size(self):
        values = [units.dgemm_mflop(n) for n in (10, 100, 310, 1000)]
        assert values == sorted(values)
        assert math.isclose(values[-1] / values[0], 1e6)
