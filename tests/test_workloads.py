"""Workloads: DGEMM model, demand conversion, load ramp."""

import pytest

from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.errors import ParameterError, SimulationError
from repro.middleware.system import MiddlewareSystem
from repro.sim.engine import Simulator
from repro.units import dgemm_mflop
from repro.workloads.demand import ClientDemand
from repro.workloads.dgemm import DGEMMWorkload
from repro.workloads.loadgen import ClientRamp


class TestDGEMMWorkload:
    def test_square_work(self):
        assert DGEMMWorkload(310).app_work == pytest.approx(dgemm_mflop(310))

    def test_rectangular(self):
        w = DGEMMWorkload(10, 20, 30)
        assert w.app_work == pytest.approx(dgemm_mflop(10, 20, 30))
        assert w.name == "dgemm-10x20x30"

    def test_square_name(self):
        assert DGEMMWorkload(100).name == "dgemm-100x100"

    def test_footprints(self):
        w = DGEMMWorkload(100)
        # A and B: 2 * 100*100 doubles = 160 kB = 1.28 Mb.
        assert w.input_mb == pytest.approx(1.28)
        assert w.output_mb == pytest.approx(0.64)

    def test_data_shipping_params(self):
        w = DGEMMWorkload(100)
        params = w.params_with_data_shipping(ModelParams())
        assert params.service_sizes.sreq == pytest.approx(w.input_mb)
        assert params.service_sizes.srep == pytest.approx(w.output_mb)
        # Scheduling-phase sizes untouched.
        assert params.server_sizes == ModelParams().server_sizes

    def test_rejects_bad_dims(self):
        with pytest.raises(ParameterError):
            DGEMMWorkload(0)


class TestClientDemand:
    def test_rate_passthrough(self):
        demand = ClientDemand(rate=100.0)
        assert demand.as_rate(ModelParams(), 16.0, 265.0) == 100.0

    def test_clients_converted_by_littles_law(self):
        p = ModelParams()
        demand = ClientDemand(clients=10)
        rate = demand.as_rate(p, 16.0, 265.0)
        latency = ClientDemand.min_latency(p, 16.0, 265.0)
        assert rate == pytest.approx(10.0 / latency)

    def test_min_latency_dominated_by_service(self):
        p = ModelParams()
        latency = ClientDemand.min_latency(p, 2000.0, 265.0)
        assert latency == pytest.approx(2000.0 / 265.0, rel=0.01)

    def test_exactly_one_spec_required(self):
        with pytest.raises(ParameterError):
            ClientDemand()
        with pytest.raises(ParameterError):
            ClientDemand(rate=1.0, clients=1)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ClientDemand(rate=-1.0)
        with pytest.raises(ParameterError):
            ClientDemand(clients=0)


def small_star() -> Hierarchy:
    h = Hierarchy()
    h.set_root("agent", 265.0)
    h.add_server("s0", 265.0, "agent")
    h.add_server("s1", 265.0, "agent")
    return h


class TestClientRamp:
    def test_ramp_reaches_plateau_and_holds(self):
        sim = Simulator()
        system = MiddlewareSystem(sim, small_star(), ModelParams(), 16.0)
        ramp = ClientRamp(
            client_interval=0.2,
            max_clients=60,
            window=0.2,
            hold_duration=5.0,
        )
        result = ramp.run(system)
        # Two 265-MFlop/s servers at 16 MFlop/request: ~33 req/s.
        assert result.max_sustained == pytest.approx(33.1, rel=0.05)
        assert result.clients_at_peak < 60  # plateau froze the ramp
        assert result.total_completed > 0

    def test_load_curve_is_rising_then_flat(self):
        sim = Simulator()
        system = MiddlewareSystem(sim, small_star(), ModelParams(), 16.0)
        ramp = ClientRamp(
            client_interval=0.2, max_clients=60, window=0.2, hold_duration=3.0
        )
        result = ramp.run(system)
        clients, rates = result.curve()
        assert len(clients) == len(rates)
        # Early rate well below the plateau.
        assert rates[0] < result.max_sustained * 0.7

    def test_max_clients_cap_respected(self):
        sim = Simulator()
        system = MiddlewareSystem(sim, small_star(), ModelParams(), 16.0)
        ramp = ClientRamp(
            client_interval=0.1, max_clients=5, window=0.1, hold_duration=2.0
        )
        result = ramp.run(system)
        assert result.clients_at_peak == 5

    def test_validation(self):
        with pytest.raises(SimulationError):
            ClientRamp(client_interval=0.0)
        with pytest.raises(SimulationError):
            ClientRamp(max_clients=0)
        with pytest.raises(SimulationError):
            ClientRamp(plateau_buckets=1)
        with pytest.raises(SimulationError):
            ClientRamp(hold_duration=0.0)
