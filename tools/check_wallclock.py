#!/usr/bin/env python
"""Lint: wall clocks may only be read inside ``repro/obs/``.

The repository's determinism contract says simulation results — and
everything recorded on a ``ControlTimeline`` — are pure functions of
their seeds.  The single sanctioned escape hatch is the observability
package, whose ``Stopwatch`` and tracer profiling fields read
``time.perf_counter`` for telemetry that never feeds back into the
run.  This lint walks every Python file under ``src/`` and fails if a
wall-clock source (``time.time``, ``time.perf_counter``,
``time.monotonic``, their ``_ns`` variants, or ``datetime.now``) is
referenced anywhere outside ``src/repro/obs/``.

Run it from the repository root (CI does)::

    python tools/check_wallclock.py

Exits 0 when clean, 1 with one ``path:line: message`` per violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Functions in the ``time`` module that read a wall clock.
TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
    }
)

#: ``datetime``/``date`` constructors that capture "now".
DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})


def _violations(tree: ast.AST) -> list[tuple[int, str]]:
    """Every wall-clock reference in ``tree`` as ``(line, message)``."""
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in TIME_FUNCTIONS:
                    found.append(
                        (
                            node.lineno,
                            f"imports wall clock time.{alias.name}",
                        )
                    )
        elif isinstance(node, ast.Attribute):
            owner = node.value
            if not isinstance(owner, ast.Name):
                continue
            if owner.id == "time" and node.attr in TIME_FUNCTIONS:
                found.append(
                    (node.lineno, f"references time.{node.attr}")
                )
            elif (
                owner.id in ("datetime", "date")
                and node.attr in DATETIME_FUNCTIONS
            ):
                found.append(
                    (node.lineno, f"references {owner.id}.{node.attr}")
                )
    return found


def check_tree(root: Path, allowed: str = "repro/obs") -> list[str]:
    """Lint every ``.py`` under ``root``; return formatted violations."""
    messages: list[str] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative.startswith(allowed + "/"):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for line, message in _violations(tree):
            messages.append(f"{root / relative}:{line}: {message}")
    return messages


def main(argv: list[str] | None = None) -> int:
    """Entry point: lint ``src/`` (or the paths given) and report."""
    arguments = sys.argv[1:] if argv is None else argv
    roots = [Path(a) for a in arguments] or [
        Path(__file__).resolve().parent.parent / "src"
    ]
    messages: list[str] = []
    for root in roots:
        if not root.is_dir():
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 2
        messages.extend(check_tree(root))
    if messages:
        print(
            "wall-clock reads outside repro/obs/ "
            "(the determinism contract forbids them):"
        )
        for message in messages:
            print(f"  {message}")
        return 1
    print("wall-clock lint: clean (wall clocks only inside repro/obs/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
